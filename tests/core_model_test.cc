// Tests for core/: Database, Transaction validation and queries,
// TransactionBuilder, TransactionSystem.
#include <gtest/gtest.h>

#include <set>

#include "core/database.h"
#include "core/system.h"
#include "core/transaction.h"
#include "core/transaction_builder.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSpreadDb;
using testutil::MakeSystem;

TEST(DatabaseTest, SitesAndEntities) {
  Database db;
  auto s1 = db.AddSite("s1");
  ASSERT_TRUE(s1.ok());
  auto x = db.AddEntity("x", *s1);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(db.num_sites(), 1);
  EXPECT_EQ(db.num_entities(), 1);
  EXPECT_EQ(db.SiteOf(*x), *s1);
  EXPECT_EQ(db.EntityName(*x), "x");
  EXPECT_EQ(db.FindEntity("x"), *x);
  EXPECT_EQ(db.FindEntity("nope"), kInvalidEntity);
  EXPECT_EQ(db.FindSite("nope"), kInvalidSite);
}

TEST(DatabaseTest, DuplicateNamesRejected) {
  Database db;
  ASSERT_TRUE(db.AddSite("s").ok());
  EXPECT_TRUE(db.AddSite("s").status().code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.AddEntity("x", 0).ok());
  EXPECT_FALSE(db.AddEntity("x", 0).ok());
}

TEST(DatabaseTest, EntityAtUnknownSiteRejected) {
  Database db;
  EXPECT_FALSE(db.AddEntity("x", 3).ok());
}

TEST(DatabaseTest, AddEntityAtSiteCreatesSite) {
  Database db;
  auto x = db.AddEntityAtSite("x", "fresh");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(db.FindSite("fresh"), db.SiteOf(*x));
}

TEST(DatabaseTest, EntitiesAt) {
  auto db = MakeDb({{"s1", {"x", "y"}}, {"s2", {"z"}}});
  EXPECT_EQ(db->EntitiesAt(db->FindSite("s1")).size(), 2u);
  EXPECT_EQ(db->EntitiesAt(db->FindSite("s2")).size(), 1u);
}

// ---------------------------------------------------------------------
// Transaction validation (the Section 2 model constraints).

TEST(TransactionTest, ValidSequenceBuilds) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Ux", "Uy"});
  EXPECT_EQ(t.num_steps(), 4);
  EXPECT_EQ(t.entities().size(), 2u);
  EXPECT_TRUE(t.Accesses(db->FindEntity("x")));
}

TEST(TransactionTest, DoubleLockRejected) {
  auto db = MakeDb({{"s1", {"x"}}});
  auto t = TransactionBuilder::FromSequence(
      db.get(), "T",
      {{StepKind::kLock, "x"}, {StepKind::kLock, "x"}, {StepKind::kUnlock, "x"}});
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidModel);
}

TEST(TransactionTest, MissingUnlockRejected) {
  auto db = MakeDb({{"s1", {"x"}}});
  auto t = TransactionBuilder::FromSequence(db.get(), "T",
                                            {{StepKind::kLock, "x"}});
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidModel);
}

TEST(TransactionTest, UnlockWithoutLockRejected) {
  auto db = MakeDb({{"s1", {"x"}}});
  auto t = TransactionBuilder::FromSequence(db.get(), "T",
                                            {{StepKind::kUnlock, "x"}});
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidModel);
}

TEST(TransactionTest, UnlockBeforeLockRejected) {
  auto db = MakeDb({{"s1", {"x"}}});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  int u = b.Unlock("x");
  int l = b.Lock("x");
  b.Arc(u, l);
  // The builder auto-adds L->U, creating a cycle with the explicit U->L.
  EXPECT_EQ(b.Build().status().code(), StatusCode::kInvalidModel);
}

TEST(TransactionTest, SameSiteStepsMustBeOrdered) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);  // Leave Lx and Ly unordered: both at s1.
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  auto t = b.Build();
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidModel);
}

TEST(TransactionTest, CrossSiteStepsMayBeUnordered) {
  auto db = MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  ASSERT_TRUE(b.Build().ok());
}

TEST(TransactionTest, UnknownEntityReported) {
  auto db = MakeDb({{"s1", {"x"}}});
  TransactionBuilder b(db.get(), "T");
  b.Lock("ghost");
  EXPECT_EQ(b.Build().status().code(), StatusCode::kNotFound);
}

TEST(TransactionTest, PrecedenceQueries) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  NodeId lx = t.LockNode(db->FindEntity("x"));
  NodeId ux = t.UnlockNode(db->FindEntity("x"));
  NodeId ly = t.LockNode(db->FindEntity("y"));
  EXPECT_TRUE(t.Precedes(lx, ux));
  EXPECT_TRUE(t.Precedes(lx, ly));
  EXPECT_FALSE(t.Precedes(ux, lx));
  EXPECT_TRUE(t.Comparable(lx, ly));
  EXPECT_EQ(t.LockNode(999), kInvalidNode);
}

TEST(TransactionTest, EntitiesLockedBeforeAndHeldAt) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  // Lx Ly Ux Lz ... at Lz: locked-before = {x, y}; held = {y} (x unlocked).
  Transaction t =
      MakeSeq(db.get(), "T", {"Lx", "Ly", "Ux", "Lz", "Uy", "Uz"});
  NodeId lz = t.LockNode(db->FindEntity("z"));
  auto before = t.EntitiesLockedBefore(lz);
  EXPECT_EQ(std::set<EntityId>(before.begin(), before.end()),
            (std::set<EntityId>{db->FindEntity("x"), db->FindEntity("y")}));
  auto held = t.EntitiesHeldAt(lz);
  EXPECT_EQ(std::set<EntityId>(held.begin(), held.end()),
            (std::set<EntityId>{db->FindEntity("y")}));
}

// L_T(s) on a partial order uses the *laziest* extension: entities whose
// Unlock must come after s even though their Lock may be unordered w.r.t.
// s are included.
TEST(TransactionTest, HeldAtOnPartialOrder) {
  auto db = MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x");
  int ly = b.Lock("y");
  int ux = b.Unlock("x");
  int uy = b.Unlock("y");
  b.Arc(lx, ux).Arc(ly, uy).Arc(ly, ux);  // Ly -> Ux; Lx unordered with Ly.
  Transaction t = *b.Build();
  // At Ly: x's unlock is after Ly, x's lock is NOT after Ly (unordered) =>
  // x is in L_T(Ly).
  auto held = t.EntitiesHeldAt(t.LockNode(db->FindEntity("y")));
  EXPECT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0], db->FindEntity("x"));
}

TEST(TransactionTest, LinearExtensionsOfChainIsOne) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  EXPECT_EQ(t.AllLinearExtensions().size(), 1u);
}

TEST(TransactionTest, LinearExtensionsOfParallelPairs) {
  auto db = MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Unlock("x");
  b.Lock("y");
  b.Unlock("y");
  Transaction t = *b.Build();
  // Two independent 2-chains: C(4,2) = 6 interleavings.
  EXPECT_EQ(t.AllLinearExtensions().size(), 6u);
}

TEST(TransactionTest, AllExtensionsAreValidTopologicalOrders) {
  auto db = MakeSpreadDb({"x", "y", "z"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x");
  int ly = b.Lock("y");
  int lz = b.Lock("z");
  b.Unlock("x");
  b.Unlock("y");
  b.Unlock("z");
  b.Arc(lx, ly).Arc(lx, lz);
  Transaction t = *b.Build();
  for (const auto& ext : t.AllLinearExtensions()) {
    ASSERT_EQ(ext.size(), static_cast<size_t>(t.num_steps()));
    std::vector<int> pos(t.num_steps());
    for (int i = 0; i < t.num_steps(); ++i) pos[ext[i]] = i;
    for (NodeId u = 0; u < t.num_steps(); ++u) {
      for (NodeId v = 0; v < t.num_steps(); ++v) {
        if (t.Precedes(u, v)) EXPECT_LT(pos[u], pos[v]);
      }
    }
  }
}

TEST(TransactionTest, SampleExtensionRespectsOrder) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  Transaction t =
      MakeSeq(db.get(), "T", {"Lx", "Ly", "Lz", "Uz", "Uy", "Ux"});
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    auto ext = t.SampleLinearExtension(&rng);
    EXPECT_EQ(ext, t.SomeLinearExtension());  // Chain: unique extension.
  }
}

TEST(TransactionTest, HasseDiagramDropsRedundantArcs) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  Digraph hasse = t.HasseDiagram();
  // A 4-chain has exactly 3 Hasse arcs.
  EXPECT_EQ(hasse.num_arcs(), 3);
}

TEST(TransactionTest, StepLabelAndDebugString) {
  auto db = MakeDb({{"s1", {"x"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ux"});
  EXPECT_EQ(t.StepLabel(0), "Lx");
  EXPECT_EQ(t.StepLabel(1), "Ux");
  EXPECT_NE(t.DebugString().find("Lx"), std::string::npos);
}

TEST(BuilderTest, ChainAddsSequentialArcs) {
  auto db = MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x");
  int ly = b.Lock("y");
  int ux = b.Unlock("x");
  int uy = b.Unlock("y");
  b.Chain({lx, ly, ux, uy});
  Transaction t = *b.Build();
  EXPECT_TRUE(t.Precedes(lx, uy));
}

TEST(BuilderTest, AutoSiteChainOrdersSameSiteSteps) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  TransactionBuilder b(db.get(), "T");  // auto chain default on
  int lx = b.Lock("x");
  int ly = b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  Transaction t = *b.Build();
  EXPECT_TRUE(t.Precedes(lx, ly));
}

TEST(BuilderTest, ArcOnFailedStepLatchesError) {
  auto db = MakeDb({{"s1", {"x"}}});
  TransactionBuilder b(db.get(), "T");
  int bad = b.Lock("ghost");
  int lx = b.Lock("x");
  b.Arc(bad, lx);
  EXPECT_FALSE(b.Build().ok());
}

// ---------------------------------------------------------------------
// TransactionSystem.

TEST(SystemTest, SharedEntitiesAndInteractionGraph) {
  auto db = MakeDb({{"s1", {"x", "y"}}, {"s2", {"z"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Ly", "Lz", "Uy", "Uz"});
  Transaction t3 = MakeSeq(db.get(), "T3", {"Lz", "Uz"});
  TransactionSystem sys = MakeSystem(db.get(), {});
  std::vector<Transaction> txns;
  txns.push_back(std::move(t1));
  txns.push_back(std::move(t2));
  txns.push_back(std::move(t3));
  sys = MakeSystem(db.get(), std::move(txns));

  EXPECT_EQ(sys.SharedEntities(0, 1),
            std::vector<EntityId>{db->FindEntity("y")});
  EXPECT_TRUE(sys.SharedEntities(0, 2).empty());

  UndirectedGraph g = sys.InteractionGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));

  EXPECT_EQ(sys.AccessorsOf(db->FindEntity("z")),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(sys.TotalSteps(), 10);
  EXPECT_EQ(sys.NodeLabel(GlobalNode{0, 0}), "T1.Lx");
}

TEST(SystemTest, ForeignTransactionRejected) {
  auto db1 = MakeDb({{"s1", {"x"}}});
  auto db2 = MakeDb({{"s1", {"x"}}});
  Transaction t = MakeSeq(db1.get(), "T", {"Lx", "Ux"});
  std::vector<Transaction> txns;
  txns.push_back(std::move(t));
  EXPECT_FALSE(TransactionSystem::Create(db2.get(), std::move(txns)).ok());
}

TEST(SystemTest, DuplicateTransactionNamesRejected) {
  // Names address transactions in witnesses, the server protocol, and
  // the text format; two transactions sharing one would be ambiguous
  // everywhere downstream.
  auto db = MakeDb({{"s1", {"x", "y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T", {"Ly", "Uy"}));
  auto sys = TransactionSystem::Create(db.get(), std::move(txns));
  ASSERT_FALSE(sys.ok());
  EXPECT_NE(sys.status().message().find("duplicate transaction name 'T'"),
            std::string::npos)
      << sys.status().ToString();
}

}  // namespace
}  // namespace wydb
