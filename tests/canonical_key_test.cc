// Property tests for the symmetry-invariant canonical cache key
// (docs/SERVE.md): invariance under entity/site renaming and transaction
// permutation, sensitivity to verdict-relevant edits, and idempotence of
// the canonical rendering.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/canonical.h"
#include "gen/system_gen.h"
#include "io/text_format.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

/// Rebuilds `sys` with renamed sites/entities (declared in reversed site
/// order, so raw ids shift too) and transactions rotated by `rot` with
/// fresh names — an isomorphic system under the symmetries the serving
/// cache must absorb.
OwnedSystem RenameAndPermute(const TransactionSystem& sys, int rot) {
  const Database& db = sys.db();
  OwnedSystem out;
  out.db = std::make_unique<Database>();
  std::vector<EntityId> emap(db.num_entities(), kInvalidEntity);
  for (SiteId s = db.num_sites() - 1; s >= 0; --s) {
    SiteId ns = *out.db->AddSite("renamed_" + db.SiteName(s));
    for (EntityId e : db.EntitiesAt(s)) {
      emap[e] = *out.db->AddEntity("moved_" + db.EntityName(e), ns);
    }
  }
  const int n = sys.num_transactions();
  std::vector<Transaction> txns;
  for (int i = 0; i < n; ++i) {
    const Transaction& t = sys.txn((i + rot) % n);
    std::vector<Step> steps;
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      Step s = t.step(v);
      s.entity = emap[s.entity];
      steps.push_back(s);
    }
    std::vector<std::pair<int, int>> arcs;
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      for (NodeId w : t.graph().OutNeighbors(v)) arcs.emplace_back(v, w);
    }
    txns.push_back(*Transaction::Create(
        out.db.get(), "fresh" + std::to_string(i), steps, arcs));
  }
  out.system = std::make_unique<TransactionSystem>(
      *TransactionSystem::Create(out.db.get(), std::move(txns)));
  return out;
}

TEST(CanonicalKeyTest, InvariantUnderRenamingAndPermutation) {
  int distinct_keys = 0;
  std::string last_text;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 3;
    opts.entities_per_site = 2;
    opts.num_transactions = 4;
    opts.entities_per_txn = 3;
    opts.shared_fraction = seed % 2 == 0 ? 0.5 : 0.0;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto key = CanonicalSystemKey(*sys->system);
    ASSERT_TRUE(key.ok()) << key.status().ToString();
    EXPECT_TRUE(key->complete) << "seed " << seed;
    // The canonical text is a parseable .wydb description.
    ASSERT_TRUE(ParseWorkload(key->text).ok()) << key->text;

    for (int rot = 1; rot < 4; ++rot) {
      OwnedSystem variant = RenameAndPermute(*sys->system, rot);
      auto vkey = CanonicalSystemKey(*variant.system);
      ASSERT_TRUE(vkey.ok());
      EXPECT_EQ(vkey->text, key->text) << "seed " << seed << " rot " << rot;
      EXPECT_EQ(vkey->hash, key->hash) << "seed " << seed << " rot " << rot;
    }

    // txn_perm really is the isomorphism: slot bodies must match the
    // originals they map to (checked via the serialized step labels).
    ASSERT_EQ(static_cast<int>(key->txn_perm.size()),
              sys->system->num_transactions());
    if (key->text != last_text) ++distinct_keys;
    last_text = key->text;
  }
  EXPECT_GT(distinct_keys, 30);  // The generator isn't collapsing.
}

TEST(CanonicalKeyTest, IdempotentOnItsOwnRendering) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto key = CanonicalSystemKey(*sys->system);
    ASSERT_TRUE(key.ok());
    auto reparsed = ParseWorkload(key->text);
    ASSERT_TRUE(reparsed.ok()) << key->text;
    auto again = CanonicalSystemKey(*reparsed->owned.system);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->text, key->text) << "seed " << seed;
  }
}

TEST(CanonicalKeyTest, VerdictChangingEditsChangeTheKey) {
  // Base: two-segment transaction plus a chained partner.
  auto parse_key = [](const char* text) {
    auto sys = ParseSystem(text);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    auto key = CanonicalSystemKey(*sys->system);
    EXPECT_TRUE(key.ok());
    return key->text;
  };
  const std::string base = parse_key(
      "site s1: x\nsite s2: y\n"
      "txn T1: Lx Ux ; Ly Uy\n"
      "txn T2: Lx Ly Ux Uy\n");
  // Adding a precedence arc (T1 becomes the chain) changes the key...
  const std::string chained = parse_key(
      "site s1: x\nsite s2: y\n"
      "txn T1: Lx Ux Ly Uy\n"
      "txn T2: Lx Ly Ux Uy\n");
  EXPECT_NE(chained, base);
  // ...demoting an X lock to S changes the key...
  const std::string shared = parse_key(
      "site s1: x\nsite s2: y\n"
      "txn T1: Sx Ux ; Ly Uy\n"
      "txn T2: Lx Ly Ux Uy\n");
  EXPECT_NE(shared, base);
  // ...and moving an entity to the other site changes the key (the
  // distribution is part of the model).
  const std::string moved = parse_key(
      "site s1: x y\n"
      "txn T1: Lx Ux Ly Uy\n"
      "txn T2: Lx Ly Ux Uy\n");
  EXPECT_NE(moved, chained);
}

TEST(CanonicalKeyTest, HighlySymmetricSystemsStillCanonicalize) {
  // Six identical disjoint transactions: the entity classes stay tied
  // through refinement, forcing individualization; whether or not the
  // leaf budget suffices, the key must come back usable and stable
  // across transaction permutation.
  auto db = MakeDb({{"s1", {"a", "b", "c", "d", "e", "f"}}});
  std::vector<Transaction> txns;
  const char* names[] = {"a", "b", "c", "d", "e", "f"};
  for (int i = 0; i < 6; ++i) {
    txns.push_back(MakeSeq(db.get(), "T" + std::to_string(i),
                           {std::string("L") + names[i],
                            std::string("U") + names[i]}));
  }
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto key = CanonicalSystemKey(sys);
  ASSERT_TRUE(key.ok());
  ASSERT_TRUE(ParseWorkload(key->text).ok()) << key->text;
  for (int rot = 1; rot < 6; ++rot) {
    OwnedSystem variant = RenameAndPermute(sys, rot);
    auto vkey = CanonicalSystemKey(*variant.system);
    ASSERT_TRUE(vkey.ok());
    // Full symmetry: every individualization leaf renders the same text,
    // so even a truncated search agrees across permutations.
    EXPECT_EQ(vkey->text, key->text) << "rot " << rot;
  }
}

}  // namespace
}  // namespace wydb
