// Property tests for the graph substrate against independent reference
// implementations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "graph/algorithms.h"
#include "graph/johnson.h"
#include "graph/tarjan.h"

namespace wydb {
namespace {

Digraph RandomDigraph(int n, double p, Rng* rng, bool acyclic) {
  Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (acyclic && j < i) continue;  // Forward arcs only.
      if (rng->NextBernoulli(p)) g.AddArc(i, j);
    }
  }
  return g;
}

// Reference reachability: Floyd-Warshall style boolean closure.
std::vector<std::vector<bool>> ReferenceClosure(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<std::vector<bool>> r(n, std::vector<bool>(n, false));
  for (int i = 0; i < n; ++i) {
    for (NodeId j : g.OutNeighbors(i)) r[i][j] = true;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!r[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (r[k][j]) r[i][j] = true;
      }
    }
  }
  return r;
}

// Reference cycle enumeration: DFS from every root, canonicalized.
std::set<std::vector<NodeId>> ReferenceCycles(const Digraph& g) {
  std::set<std::vector<NodeId>> out;
  const int n = g.num_nodes();
  std::vector<NodeId> path;
  std::vector<bool> on_path(n, false);
  std::function<void(NodeId, NodeId)> dfs = [&](NodeId root, NodeId v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (w == root) {
        // Canonical: rotate so the minimum is first (here root is forced
        // minimal by construction below).
        out.insert(path);
      } else if (w > root && !on_path[w]) {
        on_path[w] = true;
        path.push_back(w);
        dfs(root, w);
        path.pop_back();
        on_path[w] = false;
      }
    }
  };
  for (NodeId root = 0; root < n; ++root) {
    path = {root};
    on_path.assign(n, false);
    on_path[root] = true;
    dfs(root, root);
  }
  return out;
}

TEST(GraphProperty, ClosureMatchesFloydWarshall) {
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(12));
    Digraph g = RandomDigraph(n, 0.25, &rng, /*acyclic=*/true);
    ReachabilityMatrix m = TransitiveClosure(g);
    auto ref = ReferenceClosure(g);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(m.Reaches(i, j), ref[i][j])
            << "trial " << trial << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GraphProperty, ReductionClosureRoundTrip) {
  Rng rng(22);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(10));
    Digraph g = RandomDigraph(n, 0.3, &rng, /*acyclic=*/true);
    ReachabilityMatrix m = TransitiveClosure(g);
    Digraph h = TransitiveReduction(g, m);
    // The reduction must have the same closure and no redundant arcs.
    ReachabilityMatrix m2 = TransitiveClosure(h);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(m.Reaches(i, j), m2.Reaches(i, j));
      }
    }
    EXPECT_LE(h.num_arcs(), g.num_arcs());
  }
}

TEST(GraphProperty, JohnsonMatchesReferenceEnumeration) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(7));
    Digraph g = RandomDigraph(n, 0.35, &rng, /*acyclic=*/false);
    std::set<std::vector<NodeId>> got;
    EnumerateElementaryCycles(g, {}, [&](const std::vector<NodeId>& c) {
      got.insert(c);  // Johnson roots cycles at their minimal node.
    });
    std::set<std::vector<NodeId>> want = ReferenceCycles(g);
    EXPECT_EQ(got, want) << "trial " << trial << "\n" << g.DebugString();
  }
}

TEST(GraphProperty, SccAgreesWithMutualReachability) {
  Rng rng(24);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(10));
    Digraph g = RandomDigraph(n, 0.25, &rng, /*acyclic=*/false);
    SccResult scc = StronglyConnectedComponents(g);
    // Reference: i ~ j iff i reaches j and j reaches i (reflexive).
    auto ref = ReferenceClosure(g);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        bool same = scc.component[i] == scc.component[j];
        bool mutual = i == j || (ref[i][j] && ref[j][i]);
        EXPECT_EQ(same, mutual) << i << "," << j;
      }
    }
  }
}

TEST(GraphProperty, CycleDetectionConsistentWithTopoSort) {
  Rng rng(25);
  for (int trial = 0; trial < 60; ++trial) {
    int n = 2 + static_cast<int>(rng.NextBelow(10));
    bool acyclic = rng.NextBernoulli(0.5);
    Digraph g = RandomDigraph(n, 0.3, &rng, acyclic);
    bool cyc = HasCycle(g);
    std::vector<NodeId> cycle = FindCycle(g);
    EXPECT_EQ(cyc, !cycle.empty());
    if (acyclic) EXPECT_FALSE(cyc);
    if (!cycle.empty()) {
      for (size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_TRUE(g.HasArc(cycle[i], cycle[(i + 1) % cycle.size()]));
      }
    }
  }
}

}  // namespace
}  // namespace wydb
