// Adversarial S/X grant-logic battery run against BOTH lock tables — the
// simulator's per-site LockManager and the live engine's thread-safe
// StripedLockManager — through one driver interface, so the two
// implementations are pinned to the same mode semantics (DESIGN.md §11):
//
//   * shared grants are batched: any number of S holders coexist, and a
//     freed entity grants the maximal consecutive shared prefix of its
//     queue at once;
//   * FIFO fairness: an S request behind a queued X waiter queues too,
//     so writers are never starved by a stream of readers;
//   * S->X upgrades keep their shared hold and jump to the queue head —
//     promoted immediately when the upgrader is the sole sharer, else
//     the moment the other sharers drain;
//   * two sharers upgrading the same entity deadlock on each other, the
//     cycle is visible in the wait-for edges (one edge per conflicting
//     holder, never a self-edge), and aborting either side promotes the
//     survivor;
//   * the shared_grants / upgrades / upgrade_aborts counters are exact.
//
// The striped-only tests at the bottom additionally pin the conflict
// policies: wound-wait resolves the upgrade deadlock by timestamp, and
// the kDetect scanner finds the 2-cycle and aborts the youngest.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/lock_manager.h"
#include "runtime/striped_lock_manager.h"

namespace wydb {
namespace {

constexpr int kEntities = 4;
constexpr int kTxns = 6;
constexpr EntityId kE = 0;
constexpr EntityId kF = 1;

using Edge = std::pair<int, int>;  // (waiter, holder)

// ---------------------------------------------------------------------
// Driver: one synchronous-looking interface over both managers. The flat
// manager is synchronous by construction; the striped manager blocks its
// caller, so the driver runs each acquire on its own thread and reports
// "blocked" once the manager shows the transaction parked.
class ModeDriver {
 public:
  virtual ~ModeDriver() = default;

  /// Issues the request. True iff granted synchronously (the caller now
  /// holds `e` in `mode`); false iff the request queued.
  virtual bool Acquire(int txn, EntityId e, LockMode mode) = 0;
  /// Waits for a previously blocked request of `txn` to be granted.
  virtual bool AwaitGranted(int txn, EntityId e, LockMode mode) = 0;
  virtual void Release(int txn, EntityId e) = 0;
  /// Aborts `txn`: drops its queued request and releases all its holds.
  virtual void Abort(int txn) = 0;

  virtual bool IsHolding(int txn, EntityId e) const = 0;
  virtual int SharerCount(EntityId e) const = 0;
  /// True iff `txn` holds `e` exclusively (no sharers, txn is holder).
  virtual bool IsExclusiveHolder(int txn, EntityId e) const = 0;
  virtual std::vector<Edge> WaitEdges() const = 0;

  virtual uint64_t SharedGrants() const = 0;
  virtual uint64_t Upgrades() const = 0;
  virtual uint64_t UpgradeAborts() const = 0;
};

bool HasEdge(const std::vector<Edge>& edges, int waiter, int holder) {
  for (const Edge& e : edges) {
    if (e.first == waiter && e.second == holder) return true;
  }
  return false;
}

// --- Flat (simulator) manager. ----------------------------------------
class FlatDriver : public ModeDriver {
 public:
  FlatDriver() : lm_(/*site=*/0, kEntities, &events_) {}

  bool Acquire(int txn, EntityId e, LockMode mode) override {
    lm_.Request(txn, e, mode);
    return Holds(txn, e, mode);
  }
  bool AwaitGranted(int txn, EntityId e, LockMode mode) override {
    // Grants happen synchronously inside Release/Abort.
    return Holds(txn, e, mode);
  }
  void Release(int txn, EntityId e) override { lm_.Release(txn, e); }
  void Abort(int txn) override { lm_.Abort(txn); }

  bool IsHolding(int txn, EntityId e) const override {
    return lm_.IsHolding(txn, e);
  }
  int SharerCount(EntityId e) const override {
    return lm_.SharerCountOf(e);
  }
  bool IsExclusiveHolder(int txn, EntityId e) const override {
    return lm_.HolderOf(e) == txn && lm_.SharerCountOf(e) == 0;
  }
  std::vector<Edge> WaitEdges() const override {
    std::vector<Edge> out;
    for (const auto& we : lm_.WaitForEdges()) {
      out.emplace_back(we.waiter, we.holder);
    }
    return out;
  }
  uint64_t SharedGrants() const override { return lm_.shared_grants(); }
  uint64_t Upgrades() const override { return lm_.upgrades(); }
  uint64_t UpgradeAborts() const override { return lm_.upgrade_aborts(); }

  /// The raw event buffer (flat-only tests).
  const std::vector<LockEvent>& events() const { return events_; }
  LockManager& manager() { return lm_; }

 private:
  bool Holds(int txn, EntityId e, LockMode mode) const {
    if (lm_.IsWaitingOn(txn, e)) return false;
    return mode == LockMode::kExclusive ? IsExclusiveHolder(txn, e)
                                        : lm_.IsHolding(txn, e);
  }

  std::vector<LockEvent> events_;
  LockManager lm_;
};

// --- Striped (live) manager. ------------------------------------------
class StripedDriver : public ModeDriver {
 public:
  explicit StripedDriver(
      ConflictPolicy policy = ConflictPolicy::kBlock)
      : mgr_(kEntities, kTxns, MakeOptions(policy)) {
    for (int t = 0; t < kTxns; ++t) {
      mgr_.SetTimestamp(t, static_cast<uint64_t>(t) + 1);
    }
  }
  ~StripedDriver() override {
    mgr_.RequestStop();  // Unwinds any still-parked acquire thread.
    pending_.clear();    // Future destructors join the async threads.
  }

  bool Acquire(int txn, EntityId e, LockMode mode) override {
    const size_t waiters_before = mgr_.TotalWaiters();
    auto fut = std::async(std::launch::async, [this, txn, e, mode] {
      return mgr_.Acquire(txn, e, mode);
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (fut.wait_for(std::chrono::milliseconds(1)) ==
          std::future_status::ready) {
        const auto status = fut.get();
        EXPECT_EQ(status, StripedLockManager::AcquireStatus::kGranted);
        if (status == StripedLockManager::AcquireStatus::kGranted) {
          held_[txn].insert(e);
        }
        return true;
      }
      if (mgr_.TotalWaiters() > waiters_before) {
        pending_[txn] = std::move(fut);
        return false;
      }
    }
    ADD_FAILURE() << "acquire by T" << txn << " neither granted nor parked";
    pending_[txn] = std::move(fut);
    return false;
  }

  bool AwaitGranted(int txn, EntityId e, LockMode mode) override {
    auto it = pending_.find(txn);
    if (it == pending_.end()) {
      ADD_FAILURE() << "T" << txn << " has no pending acquire";
      return false;
    }
    auto fut = std::move(it->second);
    pending_.erase(it);
    if (fut.wait_for(std::chrono::seconds(10)) !=
        std::future_status::ready) {
      ADD_FAILURE() << "pending acquire by T" << txn << " never completed";
      return false;
    }
    if (fut.get() != StripedLockManager::AcquireStatus::kGranted) {
      return false;
    }
    held_[txn].insert(e);
    return mode == LockMode::kExclusive ? IsExclusiveHolder(txn, e)
                                        : mgr_.IsHolding(txn, e);
  }

  void Release(int txn, EntityId e) override {
    mgr_.Release(txn, e);
    held_[txn].erase(e);
  }

  void Abort(int txn) override {
    mgr_.RequestAbort(txn);
    auto it = pending_.find(txn);
    if (it != pending_.end()) {
      auto fut = std::move(it->second);
      pending_.erase(it);
      if (fut.wait_for(std::chrono::seconds(10)) !=
          std::future_status::ready) {
        ADD_FAILURE() << "aborted acquire by T" << txn << " never returned";
      } else {
        EXPECT_EQ(fut.get(), StripedLockManager::AcquireStatus::kAborted);
      }
    }
    // The striped manager never releases for the caller: mirror the flat
    // manager's Abort by dropping every hold explicitly.
    std::vector<EntityId> held(held_[txn].begin(), held_[txn].end());
    mgr_.ReleaseAll(txn, held);
    held_[txn].clear();
  }

  bool IsHolding(int txn, EntityId e) const override {
    return mgr_.IsHolding(txn, e);
  }
  int SharerCount(EntityId e) const override {
    return mgr_.SharerCountOf(e);
  }
  bool IsExclusiveHolder(int txn, EntityId e) const override {
    return mgr_.HolderOf(e) == txn && mgr_.SharerCountOf(e) == 0;
  }
  std::vector<Edge> WaitEdges() const override {
    std::vector<Edge> out;
    for (const auto& we : mgr_.WaitForEdges()) {
      out.emplace_back(we.waiter, we.holder);
    }
    return out;
  }
  uint64_t SharedGrants() const override { return mgr_.shared_grants(); }
  uint64_t Upgrades() const override { return mgr_.upgrades(); }
  uint64_t UpgradeAborts() const override { return mgr_.upgrade_aborts(); }

  StripedLockManager& manager() { return mgr_; }

 private:
  static StripedLockManager::Options MakeOptions(ConflictPolicy policy) {
    StripedLockManager::Options o;
    o.policy = policy;
    o.num_stripes = 2;
    return o;
  }

  StripedLockManager mgr_;
  std::map<int, std::future<StripedLockManager::AcquireStatus>> pending_;
  std::map<int, std::set<EntityId>> held_;
};

// ---------------------------------------------------------------------
enum class Impl { kFlat, kStriped };

std::unique_ptr<ModeDriver> NewDriver(Impl impl) {
  if (impl == Impl::kFlat) return std::make_unique<FlatDriver>();
  return std::make_unique<StripedDriver>();
}

class LockModesTest : public ::testing::TestWithParam<Impl> {};

TEST_P(LockModesTest, SharedGrantsCoexistAndBlockExclusive) {
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(1, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(2, kE, LockMode::kShared));
  EXPECT_EQ(d->SharerCount(kE), 3);
  EXPECT_EQ(d->SharedGrants(), 3u);

  // X conflicts with every sharer: queued, one wait edge per holder.
  EXPECT_FALSE(d->Acquire(3, kE, LockMode::kExclusive));
  auto edges = d->WaitEdges();
  EXPECT_TRUE(HasEdge(edges, 3, 0));
  EXPECT_TRUE(HasEdge(edges, 3, 1));
  EXPECT_TRUE(HasEdge(edges, 3, 2));

  d->Release(0, kE);
  d->Release(1, kE);
  EXPECT_FALSE(d->IsExclusiveHolder(3, kE));  // One sharer remains.
  d->Release(2, kE);
  EXPECT_TRUE(d->AwaitGranted(3, kE, LockMode::kExclusive));
  EXPECT_EQ(d->SharerCount(kE), 0);
}

TEST_P(LockModesTest, SharedQueuesBehindQueuedExclusive) {
  // FIFO fairness: T2's S request is compatible with the S holder T0 but
  // must queue behind the earlier X waiter T1 — no reader starvation.
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_FALSE(d->Acquire(1, kE, LockMode::kExclusive));
  EXPECT_FALSE(d->Acquire(2, kE, LockMode::kShared));
  EXPECT_EQ(d->SharerCount(kE), 1);

  // The writer goes first...
  d->Release(0, kE);
  EXPECT_TRUE(d->AwaitGranted(1, kE, LockMode::kExclusive));
  EXPECT_FALSE(d->IsHolding(2, kE));
  // ...and the reader follows.
  d->Release(1, kE);
  EXPECT_TRUE(d->AwaitGranted(2, kE, LockMode::kShared));
}

TEST_P(LockModesTest, FreedEntityGrantsSharedBatch) {
  // Release of an X hold grants the whole consecutive S prefix at once,
  // but not the X request queued behind it.
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kExclusive));
  EXPECT_FALSE(d->Acquire(1, kE, LockMode::kShared));
  EXPECT_FALSE(d->Acquire(2, kE, LockMode::kShared));
  EXPECT_FALSE(d->Acquire(3, kE, LockMode::kExclusive));

  d->Release(0, kE);
  EXPECT_TRUE(d->AwaitGranted(1, kE, LockMode::kShared));
  EXPECT_TRUE(d->AwaitGranted(2, kE, LockMode::kShared));
  EXPECT_EQ(d->SharerCount(kE), 2);
  EXPECT_FALSE(d->IsHolding(3, kE));
  EXPECT_EQ(d->SharedGrants(), 2u);

  d->Release(1, kE);
  d->Release(2, kE);
  EXPECT_TRUE(d->AwaitGranted(3, kE, LockMode::kExclusive));
}

TEST_P(LockModesTest, SoleSharerUpgradesImmediately) {
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kExclusive));
  EXPECT_TRUE(d->IsExclusiveHolder(0, kE));
  EXPECT_EQ(d->Upgrades(), 1u);

  // The upgraded hold is a normal X hold: one Release frees the entity.
  EXPECT_FALSE(d->Acquire(1, kE, LockMode::kShared));
  d->Release(0, kE);
  EXPECT_TRUE(d->AwaitGranted(1, kE, LockMode::kShared));
}

TEST_P(LockModesTest, QueuedUpgradeKeepsSharedHoldAndJumpsQueue) {
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(1, kE, LockMode::kShared));
  // T0 upgrades: not promotable (T1 still shares), keeps its S hold.
  EXPECT_FALSE(d->Acquire(0, kE, LockMode::kExclusive));
  EXPECT_TRUE(d->IsHolding(0, kE));
  EXPECT_EQ(d->SharerCount(kE), 2);
  // The upgrader waits on the other sharer, never on itself.
  auto edges = d->WaitEdges();
  EXPECT_TRUE(HasEdge(edges, 0, 1));
  EXPECT_FALSE(HasEdge(edges, 0, 0));

  // A later S request queues behind the head upgrade (FIFO fairness).
  EXPECT_FALSE(d->Acquire(2, kE, LockMode::kShared));

  // The other sharer drains: the upgrade is promoted ahead of T2.
  d->Release(1, kE);
  EXPECT_TRUE(d->AwaitGranted(0, kE, LockMode::kExclusive));
  EXPECT_EQ(d->Upgrades(), 1u);
  EXPECT_FALSE(d->IsHolding(2, kE));

  d->Release(0, kE);
  EXPECT_TRUE(d->AwaitGranted(2, kE, LockMode::kShared));
}

TEST_P(LockModesTest, TwoUpgradersDeadlockAndAbortResolves) {
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(1, kE, LockMode::kShared));
  EXPECT_FALSE(d->Acquire(0, kE, LockMode::kExclusive));
  EXPECT_FALSE(d->Acquire(1, kE, LockMode::kExclusive));

  // A genuine 2-cycle in the wait-for relation: each upgrader waits on
  // the other's shared hold (and never on its own).
  auto edges = d->WaitEdges();
  EXPECT_TRUE(HasEdge(edges, 0, 1));
  EXPECT_TRUE(HasEdge(edges, 1, 0));
  EXPECT_FALSE(HasEdge(edges, 0, 0));
  EXPECT_FALSE(HasEdge(edges, 1, 1));

  // Aborting one side abandons its upgrade and its shared hold; the
  // survivor becomes the sole sharer and is promoted.
  d->Abort(1);
  EXPECT_TRUE(d->AwaitGranted(0, kE, LockMode::kExclusive));
  EXPECT_EQ(d->Upgrades(), 1u);
  EXPECT_EQ(d->UpgradeAborts(), 1u);
  EXPECT_FALSE(d->IsHolding(1, kE));
}

TEST_P(LockModesTest, ModesAreIndependentAcrossEntities) {
  auto d = NewDriver(GetParam());
  EXPECT_TRUE(d->Acquire(0, kE, LockMode::kShared));
  EXPECT_TRUE(d->Acquire(0, kF, LockMode::kExclusive));
  EXPECT_TRUE(d->Acquire(1, kE, LockMode::kShared));
  EXPECT_FALSE(d->Acquire(1, kF, LockMode::kShared));
  d->Release(0, kF);
  EXPECT_TRUE(d->AwaitGranted(1, kF, LockMode::kShared));
  EXPECT_EQ(d->SharerCount(kE), 2);
  EXPECT_EQ(d->SharerCount(kF), 1);
}

INSTANTIATE_TEST_SUITE_P(Impl, LockModesTest,
                         ::testing::Values(Impl::kFlat, Impl::kStriped),
                         [](const auto& info) {
                           return info.param == Impl::kFlat ? "Flat"
                                                            : "Striped";
                         });

// ---------------------------------------------------------------------
// Flat-only: the POD event protocol under shared modes. A blocked X
// request emits one kBlock record PER conflicting holder, so a
// timestamp policy can resolve the request against each of them.
TEST(FlatLockModesTest, BlockEventsEmittedPerConflictingHolder) {
  FlatDriver d;
  d.Acquire(0, kE, LockMode::kShared);
  d.Acquire(1, kE, LockMode::kShared);
  const size_t before = d.events().size();
  d.Acquire(2, kE, LockMode::kExclusive);
  int blocks = 0;
  for (size_t i = before; i < d.events().size(); ++i) {
    const LockEvent& ev = d.events()[i];
    if (ev.kind != LockEvent::Kind::kBlock) continue;
    EXPECT_EQ(ev.txn, 2);
    EXPECT_TRUE(ev.holder == 0 || ev.holder == 1);
    ++blocks;
  }
  EXPECT_EQ(blocks, 2);
}

// X-only workloads never touch the shared machinery: counters stay zero
// and the waiter pool still plateaus (the pre-S/X contract).
TEST(FlatLockModesTest, ExclusiveOnlyTrafficKeepsCountersZero) {
  FlatDriver d;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(d.Acquire(0, kE, LockMode::kExclusive));
    ASSERT_FALSE(d.Acquire(1, kE, LockMode::kExclusive));
    d.Release(0, kE);
    ASSERT_TRUE(d.AwaitGranted(1, kE, LockMode::kExclusive));
    d.Release(1, kE);
  }
  EXPECT_EQ(d.SharedGrants(), 0u);
  EXPECT_EQ(d.Upgrades(), 0u);
  EXPECT_EQ(d.UpgradeAborts(), 0u);
  EXPECT_EQ(d.manager().free_waiter_count(), d.manager().waiter_pool_size());
}

// ---------------------------------------------------------------------
// Striped-only: the conflict policies resolve the upgrade deadlock
// without any caller-side abort.

// Wound-wait: the older upgrader (smaller timestamp) wounds the younger
// sharer blocking it; the younger's queued upgrade dies.
TEST(StripedLockModesTest, WoundWaitResolvesUpgradeDeadlock) {
  StripedDriver d(ConflictPolicy::kWoundWait);
  ASSERT_TRUE(d.Acquire(0, kE, LockMode::kShared));
  ASSERT_TRUE(d.Acquire(1, kE, LockMode::kShared));
  // The younger T1 upgrades first: it must WAIT on the older sharer T0.
  ASSERT_FALSE(d.Acquire(1, kE, LockMode::kExclusive));
  // The older T0 upgrades: wound-wait wounds the younger sharer T1.
  // T1's parked upgrade returns kAborted; after it releases its shared
  // hold, T0 is the sole sharer and gets promoted.
  auto fut = std::async(std::launch::async, [&d] {
    return d.manager().Acquire(0, kE, LockMode::kExclusive);
  });
  EXPECT_FALSE(d.AwaitGranted(1, kE, LockMode::kExclusive));  // kAborted.
  EXPECT_EQ(d.manager().upgrade_aborts(), 1u);
  d.manager().ReleaseAll(1, {kE});
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), StripedLockManager::AcquireStatus::kGranted);
  EXPECT_TRUE(d.IsExclusiveHolder(0, kE));
  EXPECT_EQ(d.manager().upgrades(), 1u);
}

// kDetect: both upgraders park; the scanner snapshots the wait-for
// graph, sees the 2-cycle, and aborts the youngest.
TEST(StripedLockModesTest, DetectorResolvesUpgradeDeadlock) {
  StripedDriver d(ConflictPolicy::kDetect);
  ASSERT_TRUE(d.Acquire(0, kE, LockMode::kShared));
  ASSERT_TRUE(d.Acquire(1, kE, LockMode::kShared));
  auto f0 = std::async(std::launch::async, [&d] {
    return d.manager().Acquire(0, kE, LockMode::kExclusive);
  });
  auto f1 = std::async(std::launch::async, [&d] {
    return d.manager().Acquire(1, kE, LockMode::kExclusive);
  });
  // The youngest (largest timestamp) is T1: its upgrade is the victim.
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(f1.get(), StripedLockManager::AcquireStatus::kAborted);
  EXPECT_EQ(d.manager().upgrade_aborts(), 1u);
  d.manager().ReleaseAll(1, {kE});
  ASSERT_EQ(f0.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(f0.get(), StripedLockManager::AcquireStatus::kGranted);
  EXPECT_TRUE(d.IsExclusiveHolder(0, kE));
  EXPECT_GE(d.manager().detector_runs(), 1u);
}

// Wait-die with the YOUNGER transaction already holding S: the older
// X requester waits (it never dies), and drains once the sharer leaves.
TEST(StripedLockModesTest, WaitDieOlderRequesterWaitsOnSharers) {
  StripedDriver d(ConflictPolicy::kWaitDie);
  ASSERT_TRUE(d.Acquire(1, kE, LockMode::kShared));
  ASSERT_FALSE(d.Acquire(0, kE, LockMode::kExclusive));  // Older: waits.
  d.Release(1, kE);
  EXPECT_TRUE(d.AwaitGranted(0, kE, LockMode::kExclusive));
  // And the younger dies instead of waiting on the older's X hold.
  auto fut = std::async(std::launch::async, [&d] {
    return d.manager().Acquire(1, kE, LockMode::kShared);
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fut.get(), StripedLockManager::AcquireStatus::kAborted);
}

}  // namespace
}  // namespace wydb
