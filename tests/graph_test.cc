// Tests for graph/: Digraph, algorithms, Tarjan SCC, Johnson cycles,
// undirected graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/johnson.h"
#include "graph/tarjan.h"
#include "graph/undirected.h"

namespace wydb {
namespace {

Digraph Chain(int n) {
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddArc(i, i + 1);
  return g;
}

TEST(DigraphTest, AddAndQuery) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_EQ(g.OutDegree(1), 1);
  EXPECT_EQ(g.InDegree(1), 1);
}

TEST(DigraphTest, AddNodeGrows) {
  Digraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  g.AddArc(a, b);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_TRUE(g.HasArc(a, b));
}

TEST(DigraphTest, DeduplicateArcs) {
  Digraph g(2);
  g.AddArc(0, 1);
  g.AddArc(0, 1);
  g.AddArc(0, 1);
  EXPECT_EQ(g.num_arcs(), 3);
  g.DeduplicateArcs();
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_TRUE(g.HasArc(0, 1));
}

TEST(TopoSortTest, ChainOrder) {
  auto order = TopologicalSort(Chain(5));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(TopoSortTest, CycleReturnsNullopt) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  EXPECT_FALSE(TopologicalSort(g).has_value());
  EXPECT_TRUE(HasCycle(g));
}

TEST(TopoSortTest, EmptyGraph) {
  Digraph g;
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(FindCycleTest, ReportsActualCycle) {
  Digraph g(5);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 3);
  g.AddArc(3, 1);  // Cycle 1-2-3.
  g.AddArc(3, 4);
  std::vector<NodeId> cycle = FindCycle(g);
  ASSERT_EQ(cycle.size(), 3u);
  // Consecutive arcs exist and it closes.
  for (size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_TRUE(g.HasArc(cycle[i], cycle[(i + 1) % cycle.size()]));
  }
}

TEST(FindCycleTest, AcyclicGivesEmpty) {
  EXPECT_TRUE(FindCycle(Chain(4)).empty());
}

TEST(ClosureTest, ChainReachability) {
  Digraph g = Chain(4);
  ReachabilityMatrix m = TransitiveClosure(g);
  EXPECT_TRUE(m.Reaches(0, 3));
  EXPECT_TRUE(m.Reaches(1, 2));
  EXPECT_FALSE(m.Reaches(2, 1));
  EXPECT_FALSE(m.Reaches(0, 0));  // Strict: no self-reachability in a DAG.
}

TEST(ClosureTest, DiamondReachability) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 3);
  g.AddArc(2, 3);
  ReachabilityMatrix m = TransitiveClosure(g);
  EXPECT_TRUE(m.Reaches(0, 3));
  EXPECT_FALSE(m.Reaches(1, 2));
  EXPECT_FALSE(m.Reaches(2, 1));
}

TEST(ReductionTest, RemovesTransitiveArc) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(0, 2);  // Redundant.
  ReachabilityMatrix m = TransitiveClosure(g);
  Digraph h = TransitiveReduction(g, m);
  EXPECT_TRUE(h.HasArc(0, 1));
  EXPECT_TRUE(h.HasArc(1, 2));
  EXPECT_FALSE(h.HasArc(0, 2));
}

TEST(ReachableFromTest, FindsDescendants) {
  Digraph g = Chain(4);
  std::vector<NodeId> r = ReachableFrom(g, 1);
  std::set<NodeId> s(r.begin(), r.end());
  EXPECT_EQ(s, (std::set<NodeId>{2, 3}));
}

TEST(AncestorsOfTest, FindsAncestors) {
  Digraph g = Chain(4);
  std::vector<NodeId> a = AncestorsOf(g, 2);
  std::set<NodeId> s(a.begin(), a.end());
  EXPECT_EQ(s, (std::set<NodeId>{0, 1}));
}

TEST(TarjanTest, ChainAllSingletons) {
  SccResult r = StronglyConnectedComponents(Chain(4));
  EXPECT_EQ(r.num_components, 4);
}

TEST(TarjanTest, CycleIsOneComponent) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  g.AddArc(2, 3);
  SccResult r = StronglyConnectedComponents(g);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_NE(r.component[3], r.component[0]);
}

TEST(TarjanTest, TwoDisjointCycles) {
  Digraph g(4);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(2, 3);
  g.AddArc(3, 2);
  SccResult r = StronglyConnectedComponents(g);
  EXPECT_EQ(r.num_components, 2);
}

TEST(JohnsonTest, AcyclicHasNoCycles) {
  EXPECT_EQ(AllElementaryCycles(Chain(5)).size(), 0u);
}

TEST(JohnsonTest, SingleTriangle) {
  Digraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  g.AddArc(2, 0);
  auto cycles = AllElementaryCycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(JohnsonTest, SelfLoop) {
  Digraph g(2);
  g.AddArc(0, 0);
  g.AddArc(0, 1);
  auto cycles = AllElementaryCycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<NodeId>{0}));
}

// Complete digraph on n nodes has sum_{k=2..n} C(n,k) * (k-1)! elementary
// cycles: n=3 -> 5, n=4 -> 20.
TEST(JohnsonTest, CompleteDigraphCounts) {
  for (auto [n, expected] : {std::pair<int, uint64_t>{3, 5}, {4, 20}}) {
    Digraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) g.AddArc(i, j);
      }
    }
    EXPECT_EQ(AllElementaryCycles(g).size(), expected) << "n=" << n;
  }
}

TEST(JohnsonTest, MaxCyclesBound) {
  Digraph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) g.AddArc(i, j);
    }
  }
  CycleEnumOptions opts;
  opts.max_cycles = 7;
  EXPECT_EQ(AllElementaryCycles(g, opts).size(), 7u);
}

TEST(JohnsonTest, MaxLengthBound) {
  Digraph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) g.AddArc(i, j);
    }
  }
  CycleEnumOptions opts;
  opts.max_length = 2;
  // Only the C(4,2) = 6 two-cycles.
  EXPECT_EQ(AllElementaryCycles(g, opts).size(), 6u);
}

TEST(UndirectedTest, EdgesDeduplicated) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 1);  // Self loop ignored.
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(UndirectedTest, CycleSpaceDimension) {
  UndirectedGraph tree(4);
  tree.AddEdge(0, 1);
  tree.AddEdge(1, 2);
  tree.AddEdge(1, 3);
  EXPECT_EQ(tree.CycleSpaceDimension(), 0);

  UndirectedGraph ring(4);
  for (int i = 0; i < 4; ++i) ring.AddEdge(i, (i + 1) % 4);
  EXPECT_EQ(ring.CycleSpaceDimension(), 1);
}

TEST(UndirectedTest, TriangleHasOneSimpleCycle) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  auto cycles = g.SimpleCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

// K4 has 7 simple cycles (4 triangles + 3 squares); K5 has 37.
TEST(UndirectedTest, CompleteGraphCycleCounts) {
  for (auto [n, expected] : {std::pair<int, size_t>{4, 7}, {5, 37}}) {
    UndirectedGraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
    }
    EXPECT_EQ(g.SimpleCycles().size(), expected) << "n=" << n;
  }
}

TEST(UndirectedTest, CyclesAreClosedWalks) {
  UndirectedGraph g(5);
  for (int i = 0; i < 5; ++i) g.AddEdge(i, (i + 1) % 5);
  g.AddEdge(0, 2);
  for (const auto& cycle : g.SimpleCycles()) {
    ASSERT_GE(cycle.size(), 3u);
    for (size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(cycle[i], cycle[(i + 1) % cycle.size()]));
    }
    // No repeated vertices.
    std::set<NodeId> uniq(cycle.begin(), cycle.end());
    EXPECT_EQ(uniq.size(), cycle.size());
  }
}

}  // namespace
}  // namespace wydb
