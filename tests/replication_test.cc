// Cross-validation of the replicated traffic engine (DESIGN.md §6)
// against the static copies analyzer: systems certified safe+DF by
// Corollary 3 / Theorem 5 never deadlock under the blocking policy for
// any replication degree, an uncertified replicated system is driven
// into deadlock, and per-seed results are bit-identical for any thread
// count.
#include <gtest/gtest.h>

#include "analysis/copies_analyzer.h"
#include "core/transaction_builder.h"
#include "gen/system_gen.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

WorkloadOptions TrafficOptions(const CopyPlacement* placement,
                               ConflictPolicy policy, uint64_t seed) {
  WorkloadOptions opts;
  opts.sim.policy = policy;
  opts.sim.seed = seed;
  opts.sim.placement = placement;
  opts.duration = 20'000;
  opts.think_time = 50;
  return opts;
}

// ---------------------------------------------------------------------
// Acceptance sweep: certified farms stay deadlock-free under blocking
// traffic for every (workers, degree) cell; the analyzer verdict is the
// prediction, the engine the experiment.
struct FarmCell {
  int workers;
  int degree;
};

class CertifiedFarmSweep : public ::testing::TestWithParam<FarmCell> {};

TEST_P(CertifiedFarmSweep, NeverDeadlocksUnderBlockingTraffic) {
  const FarmCell cell = GetParam();
  ReplicatedFarmOptions fopts;
  fopts.workers = cell.workers;
  fopts.degree = cell.degree;
  fopts.certified = true;
  auto farm = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(farm.ok());

  // The syntactic verdict certifies the template for any worker count.
  CopiesVerdict verdict = CheckCopies(farm->system->txn(0), cell.workers);
  ASSERT_TRUE(verdict.safe_and_deadlock_free) << verdict.explanation;

  auto agg = RunWorkloadMany(
      *farm->system,
      TrafficOptions(farm->placement.get(), ConflictPolicy::kBlock,
                     1000 + cell.workers * 31 + cell.degree),
      /*runs=*/12);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->deadlocked_runs, 0);
  EXPECT_EQ(agg->gave_up_runs, 0);
  EXPECT_EQ(agg->budget_exhausted_runs, 0);
  EXPECT_EQ(agg->total_aborts, 0u);  // Pure blocking: no policy aborts.
  EXPECT_GT(agg->total_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cells, CertifiedFarmSweep,
                         ::testing::Values(FarmCell{2, 1}, FarmCell{2, 2},
                                           FarmCell{3, 2}, FarmCell{3, 3},
                                           FarmCell{4, 2}, FarmCell{5, 3}));

// Growing the database after building a placement must not wipe earlier
// customizations: new entities get default rows appended.
TEST(CopyPlacementTest, SetCopiesSurvivesDatabaseGrowth) {
  Database db;
  db.AddEntityAtSite("x", "s1").ValueOrDie();
  db.AddEntityAtSite("y", "s2").ValueOrDie();
  CopyPlacement placement(db);
  ASSERT_TRUE(placement
                  .SetCopies(db, db.FindEntity("x"),
                             {db.FindSite("s2"), db.FindSite("s1")})
                  .ok());
  EntityId z = db.AddEntityAtSite("z", "s3").ValueOrDie();
  ASSERT_TRUE(placement.SetCopies(db, z, {db.FindSite("s1")}).ok());
  // x's customization survives; y got a default row.
  EXPECT_EQ(placement.DegreeOf(db.FindEntity("x")), 2);
  EXPECT_EQ(placement.PrimaryOf(db.FindEntity("x")), db.FindSite("s2"));
  EXPECT_EQ(placement.PrimaryOf(db.FindEntity("y")), db.FindSite("s2"));
  EXPECT_EQ(placement.PrimaryOf(z), db.FindSite("s1"));
}

// The analysis-layer bridge produces the same artifacts.
TEST(ReplicationCrossVal, MakeReplicatedCopiesBundlesVerdictAndPlacement) {
  auto db = testutil::MakeSpreadDb({"x", "y"});
  Transaction t =
      testutil::MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  auto bundle = MakeReplicatedCopies(t, /*d=*/3, /*degree=*/2);
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(bundle->verdict.safe_and_deadlock_free);
  EXPECT_EQ(bundle->system.num_transactions(), 3);
  EXPECT_EQ(bundle->placement.MaxDegree(), 2);

  SimOptions sim;
  sim.placement = &bundle->placement;
  auto agg = RunMany(bundle->system, sim, 20);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->committed_runs, 20);
  EXPECT_EQ(agg->deadlocked_runs, 0);
  EXPECT_TRUE(agg->all_histories_serializable);
}

// ---------------------------------------------------------------------
// The refutation side: an uncertified replicated system is actually
// driven into deadlock by adverse message timing across seeds.
TEST(ReplicationCrossVal, UncertifiedReplicatedRingDeadlocks) {
  auto ring = GenerateReplicatedRingSystem(/*k=*/2, /*degree=*/2);
  ASSERT_TRUE(ring.ok());
  ASSERT_TRUE(ring->placement->IsReplicated());

  // Not an identical-copies system, but the copies analyzer refutes the
  // opposite-order template shape all the same on each member.
  CopiesVerdict verdict = CheckTwoCopies(ring->system->txn(0));
  EXPECT_TRUE(verdict.safe_and_deadlock_free)
      << "a single ring member alone is benign";

  auto agg = RunWorkloadMany(
      *ring->system,
      TrafficOptions(ring->placement.get(), ConflictPolicy::kBlock, 1),
      /*runs=*/20);
  ASSERT_TRUE(agg.ok());
  EXPECT_GT(agg->deadlocked_runs, 0);
}

// The Fig. 6 phenomenon survives data replication: the cyclic-cover
// template is refuted by the analyzer, and three replicated workers can
// deadlock.
TEST(ReplicationCrossVal, UncertifiedCyclicFarmDeadlocks) {
  ReplicatedFarmOptions fopts;
  fopts.workers = 3;
  fopts.entities = 3;
  fopts.degree = 2;
  fopts.certified = false;
  auto farm = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(farm.ok());

  CopiesVerdict verdict = CheckCopies(farm->system->txn(0), fopts.workers);
  ASSERT_FALSE(verdict.safe_and_deadlock_free);

  int deadlocked = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SimOptions sim;
    sim.seed = seed;
    sim.placement = farm->placement.get();
    auto res = RunSimulation(*farm->system, sim);
    ASSERT_TRUE(res.ok());
    if (res->deadlocked) ++deadlocked;
  }
  EXPECT_GT(deadlocked, 0);
}

// ---------------------------------------------------------------------
// Determinism: per-seed results of the replicated engine are
// bit-identical for any thread count, and the degree-1 placement is
// bit-identical to running with no placement at all.
TEST(ReplicationDeterminism, AggregatesIdenticalForAnyThreadCount) {
  ReplicatedFarmOptions fopts;
  fopts.workers = 4;
  fopts.degree = 2;
  auto farm = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(farm.ok());
  WorkloadOptions base =
      TrafficOptions(farm->placement.get(), ConflictPolicy::kWoundWait, 7);

  auto serial = RunWorkloadMany(*farm->system, base, 12, /*threads=*/1);
  auto parallel = RunWorkloadMany(*farm->system, base, 12, /*threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->total_commits, parallel->total_commits);
  EXPECT_EQ(serial->total_aborts, parallel->total_aborts);
  EXPECT_EQ(serial->deadlocked_runs, parallel->deadlocked_runs);
  EXPECT_EQ(serial->avg_throughput, parallel->avg_throughput);
  EXPECT_EQ(serial->avg_abort_rate, parallel->avg_abort_rate);
  EXPECT_EQ(serial->avg_p50, parallel->avg_p50);
  EXPECT_EQ(serial->avg_p95, parallel->avg_p95);
  EXPECT_EQ(serial->avg_p99, parallel->avg_p99);
}

TEST(ReplicationDeterminism, DegreeOnePlacementMatchesNoPlacement) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  CopyPlacement single(*ring->db);

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimOptions without;
    without.seed = seed;
    SimOptions with = without;
    with.placement = &single;
    auto a = RunSimulation(*ring->system, without);
    auto b = RunSimulation(*ring->system, with);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->all_committed, b->all_committed);
    EXPECT_EQ(a->deadlocked, b->deadlocked);
    EXPECT_EQ(a->aborts, b->aborts);
    EXPECT_EQ(a->messages, b->messages);
    EXPECT_EQ(a->events, b->events);
    EXPECT_EQ(a->makespan, b->makespan);
    EXPECT_EQ(a->blocked_txns, b->blocked_txns);
    EXPECT_EQ(a->committed_history, b->committed_history);
  }
}

// Replication multiplies the message volume (write-all fan-out) without
// changing the logical outcome of a certified system.
TEST(ReplicationTraffic, WriteAllFanOutCostsMessages) {
  ReplicatedFarmOptions fopts;
  fopts.workers = 3;
  fopts.degree = 1;
  auto single = GenerateReplicatedFarm(fopts);
  fopts.degree = 3;
  auto triple = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(triple.ok());

  SimOptions sim1;
  sim1.placement = single->placement.get();
  SimOptions sim3 = sim1;
  sim3.placement = triple->placement.get();
  auto r1 = RunSimulation(*single->system, sim1);
  auto r3 = RunSimulation(*triple->system, sim3);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r1->all_committed);
  EXPECT_TRUE(r3->all_committed);
  EXPECT_GT(r3->messages, r1->messages);
  // One committed history entry per logical step either way.
  EXPECT_EQ(r3->committed_history.size(), r1->committed_history.size());
}

}  // namespace
}  // namespace wydb
