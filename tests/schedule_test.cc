// Tests for schedules, conflict graphs D(S), prefixes, the state space and
// reduction graphs R(A') — the Section 2/3 machinery.
#include <gtest/gtest.h>

#include "core/conflict_graph.h"
#include "core/prefix.h"
#include "core/reduction_graph.h"
#include "core/schedule.h"
#include "core/state_space.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

// Two transactions over shared x, y; classic lock-step interleavings.
struct PairFixture {
  std::unique_ptr<Database> db;
  TransactionSystem sys;

  PairFixture()
      : db(MakeDb({{"s1", {"x"}}, {"s2", {"y"}}})), sys(Build(db.get())) {}

  static TransactionSystem Build(const Database* db) {
    std::vector<Transaction> txns;
    txns.push_back(MakeSeq(db, "T1", {"Lx", "Ly", "Ux", "Uy"}));
    txns.push_back(MakeSeq(db, "T2", {"Ly", "Lx", "Ux", "Uy"}));
    return testutil::MakeSystem(db, std::move(txns));
  }

  GlobalNode Node(int txn, const std::string& label) const {
    const Transaction& t = sys.txn(txn);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (t.StepLabel(v) == label) return GlobalNode{txn, v};
    }
    std::abort();
  }
};

TEST(ScheduleTest, SerialScheduleIsLegalAndComplete) {
  PairFixture f;
  Schedule s;
  for (NodeId v = 0; v < 4; ++v) s.push_back({0, v});
  for (NodeId v = 0; v < 4; ++v) s.push_back({1, v});
  EXPECT_TRUE(ValidateSchedule(f.sys, s, /*require_complete=*/true).ok());
  EXPECT_TRUE(IsSerial(f.sys, s));
}

TEST(ScheduleTest, LockRespectingInterleavingLegal) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  EXPECT_TRUE(ValidateSchedule(f.sys, s, /*require_complete=*/false).ok());
  EXPECT_FALSE(ValidateSchedule(f.sys, s, /*require_complete=*/true).ok());
  // One step each, consecutive per transaction: still "serial".
  EXPECT_TRUE(IsSerial(f.sys, s));
}

TEST(ScheduleTest, InterleavingIsNotSerial) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  Schedule s{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  ASSERT_TRUE(ValidateSchedule(sys, s, true).ok());
  EXPECT_FALSE(IsSerial(sys, s));
}

TEST(ScheduleTest, LockViolationRejected) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly"),
             f.Node(1, "Lx")};  // x still held by T1.
  EXPECT_FALSE(ValidateSchedule(f.sys, s, false).ok());
}

TEST(ScheduleTest, PrecedenceViolationRejected) {
  PairFixture f;
  Schedule s{f.Node(0, "Ly")};  // T1 must do Lx first.
  EXPECT_FALSE(ValidateSchedule(f.sys, s, false).ok());
}

TEST(ScheduleTest, DuplicateStepRejected) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(0, "Lx")};
  EXPECT_FALSE(ValidateSchedule(f.sys, s, false).ok());
}

TEST(ScheduleTest, PrefixOfExtractsExecutedNodes) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  PrefixSet p = PrefixOf(f.sys, s);
  EXPECT_TRUE(p.Contains(0, f.Node(0, "Lx").node));
  EXPECT_FALSE(p.Contains(0, f.Node(0, "Ly").node));
  EXPECT_EQ(p.TotalSize(), 2);
}

TEST(ScheduleTest, TryCompleteExtendsCompletablePrefix) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx")};
  auto full = TryComplete(f.sys, s);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->has_value());
  EXPECT_TRUE(ValidateSchedule(f.sys, **full, true).ok());
}

TEST(ScheduleTest, TryCompleteDetectsDoomedPrefix) {
  PairFixture f;
  // T1 holds x, T2 holds y: the classic deadlock; no completion exists.
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  auto full = TryComplete(f.sys, s);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->has_value());
}

TEST(ScheduleTest, ToStringRendersLabels) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  EXPECT_EQ(ScheduleToString(f.sys, s), "T1.Lx T2.Ly");
}

// ---------------------------------------------------------------------
// Conflict graph D(S).

TEST(ConflictGraphTest, SerialScheduleAcyclic) {
  PairFixture f;
  Schedule s;
  for (NodeId v = 0; v < 4; ++v) s.push_back({0, v});
  for (NodeId v = 0; v < 4; ++v) s.push_back({1, v});
  auto cg = ConflictGraph::FromSchedule(f.sys, s);
  ASSERT_TRUE(cg.ok());
  EXPECT_TRUE(cg->IsAcyclic());
  EXPECT_TRUE(cg->FindTransactionCycle().empty());
}

TEST(ConflictGraphTest, PartialScheduleCycleDetected) {
  PairFixture f;
  // T1 locked x before T2 (which accesses x but hasn't locked) => T1->T2.
  // T2 locked y before T1 => T2->T1. Cycle of the doomed prefix.
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  auto cg = ConflictGraph::FromSchedule(f.sys, s);
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(cg->IsAcyclic());
  EXPECT_EQ(cg->FindTransactionCycle().size(), 2u);
}

TEST(ConflictGraphTest, NonSerializableCompleteSchedule) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  // Early unlocking (not two-phase) admits a non-serializable schedule.
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux", "Ly", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ux", "Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  // T1.Lx T1.Ux T2.Lx T2.Ux T2.Ly T2.Uy T1.Ly T1.Uy:
  // x order: T1 then T2; y order: T2 then T1 => cycle.
  Schedule s{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {1, 3}, {0, 2}, {0, 3}};
  ASSERT_TRUE(ValidateSchedule(sys, s, true).ok());
  auto cg = ConflictGraph::FromSchedule(sys, s);
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(cg->IsAcyclic());
}

TEST(ConflictGraphTest, LabelsRecorded) {
  PairFixture f;
  Schedule s{f.Node(0, "Lx"), f.Node(1, "Ly")};
  auto cg = ConflictGraph::FromSchedule(f.sys, s);
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->arcs().size(), 2u);
  EXPECT_NE(cg->DebugString(f.sys).find("-x->"), std::string::npos);
}

// ---------------------------------------------------------------------
// PrefixSet.

TEST(PrefixSetTest, FromNodeSetsRequiresDownwardClosure) {
  PairFixture f;
  // {Ly} alone for T1 is not downward-closed (Lx precedes it).
  auto bad = PrefixSet::FromNodeSets(&f.sys, {{1}, {}});
  EXPECT_FALSE(bad.ok());
  auto good = PrefixSet::FromNodeSets(&f.sys, {{0, 1}, {0}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->SizeOf(0), 2);
  EXPECT_EQ(good->SizeOf(1), 1);
}

TEST(PrefixSetTest, LockedNotUnlockedAndHolder) {
  PairFixture f;
  auto p = PrefixSet::FromNodeSets(&f.sys, {{0, 1, 2}, {}});  // Lx Ly Ux
  ASSERT_TRUE(p.ok());
  EntityId y = f.db->FindEntity("y");
  EntityId x = f.db->FindEntity("x");
  EXPECT_EQ(p->LockedNotUnlocked(0), std::vector<EntityId>{y});
  EXPECT_EQ(p->HolderOf(y), 0);
  EXPECT_EQ(p->HolderOf(x), -1);
}

TEST(PrefixSetTest, AddWithPredecessorsClosesDownward) {
  PairFixture f;
  PrefixSet p(&f.sys);
  p.AddWithPredecessors(0, 2);  // Ux pulls in Lx, Ly.
  EXPECT_EQ(p.SizeOf(0), 3);
}

TEST(PrefixSetTest, FullAndComplete) {
  PairFixture f;
  PrefixSet p = PrefixSet::Full(&f.sys);
  EXPECT_TRUE(p.IsComplete());
  EXPECT_TRUE(p.IsFull(0));
  EXPECT_EQ(p.TotalSize(), 8);
}

TEST(PrefixSetTest, RemainingFrontier) {
  PairFixture f;
  auto p = PrefixSet::FromNodeSets(&f.sys, {{0}, {}});
  ASSERT_TRUE(p.ok());
  // T1 remaining frontier after Lx: just Ly.
  EXPECT_EQ(p->RemainingFrontier(0), std::vector<NodeId>{1});
  // T2 untouched: frontier is its first step.
  EXPECT_EQ(p->RemainingFrontier(1), std::vector<NodeId>{0});
}

TEST(MaximalPrefixTest, AvoidingEntityRemovesLockAndSuccessors) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  Transaction t =
      MakeSeq(db.get(), "T", {"Lx", "Ly", "Lz", "Uz", "Uy", "Ux"});
  auto keep = MaximalPrefixAvoiding(t, {db->FindEntity("y")});
  // Ly at index 1; everything after is a successor in a chain.
  EXPECT_TRUE(bitmask::Test(keep, 0));
  for (NodeId v = 1; v < 6; ++v) EXPECT_FALSE(bitmask::Test(keep, v));
  EXPECT_EQ(AccessedEntities(t, keep),
            std::vector<EntityId>{db->FindEntity("x")});
  auto rem = RemainingEntities(t, keep);
  EXPECT_EQ(rem.size(), 3u);  // Nothing is unlocked in the prefix.
}

TEST(MaximalPrefixTest, AvoidingNothingKeepsAll) {
  auto db = MakeDb({{"s1", {"x"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ux"});
  auto keep = MaximalPrefixAvoiding(t, {});
  EXPECT_TRUE(bitmask::Test(keep, 0));
  EXPECT_TRUE(bitmask::Test(keep, 1));
  EXPECT_TRUE(RemainingEntities(t, keep).empty());
}

// ---------------------------------------------------------------------
// StateSpace.

TEST(StateSpaceTest, LegalMovesFromEmpty) {
  PairFixture f;
  StateSpace space(&f.sys);
  auto moves = space.LegalMoves(space.EmptyState());
  // Each transaction can do its first step.
  EXPECT_EQ(moves.size(), 2u);
}

TEST(StateSpaceTest, LockBlockedByHolder) {
  PairFixture f;
  StateSpace space(&f.sys);
  ExecState s = space.Apply(space.EmptyState(), f.Node(0, "Lx"));
  EXPECT_FALSE(space.IsLegal(s, f.Node(1, "Lx")));  // Also: Ly first.
  s = space.Apply(s, f.Node(1, "Ly"));
  // T2's next step Lx is blocked by T1's lock on x.
  EXPECT_FALSE(space.IsLegal(s, f.Node(1, "Lx")));
  // And T1's next step Ly is blocked by T2.
  EXPECT_FALSE(space.IsLegal(s, f.Node(0, "Ly")));
  EXPECT_TRUE(space.LegalMoves(s).empty());  // The deadlock state.
  EXPECT_FALSE(space.IsComplete(s));
}

TEST(StateSpaceTest, HeldTracksLocks) {
  PairFixture f;
  StateSpace space(&f.sys);
  ExecState s = space.Apply(space.EmptyState(), f.Node(0, "Lx"));
  EXPECT_EQ(space.Held(s, 0), std::vector<EntityId>{f.db->FindEntity("x")});
  EXPECT_TRUE(space.Held(s, 1).empty());
}

TEST(StateSpaceTest, FindCompletionFromEmpty) {
  PairFixture f;
  StateSpace space(&f.sys);
  auto sched = space.FindCompletion(space.EmptyState());
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(sched->has_value());
  EXPECT_TRUE(ValidateSchedule(f.sys, **sched, true).ok());
}

TEST(StateSpaceTest, FindScheduleToUnreachableTarget) {
  PairFixture f;
  StateSpace space(&f.sys);
  // Target where both transactions executed exactly their first Lock:
  // reachable (locks are on different entities).
  auto p = PrefixSet::FromNodeSets(&f.sys, {{0}, {0}});
  ASSERT_TRUE(p.ok());
  auto sched = space.FindScheduleBetween(space.EmptyState(),
                                         space.StateOf(*p));
  ASSERT_TRUE(sched.ok());
  EXPECT_TRUE(sched->has_value());

  // Target where both executed Lx... impossible: T2 cannot lock x while T1
  // holds it, and in the target T1 has locked-but-not-unlocked x.
  auto q = PrefixSet::FromNodeSets(&f.sys, {{0}, {0, 1}});
  ASSERT_TRUE(q.ok());
  auto none =
      space.FindScheduleBetween(space.EmptyState(), space.StateOf(*q));
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

TEST(StateSpaceTest, BudgetExhaustion) {
  PairFixture f;
  StateSpace space(&f.sys);
  auto r = space.FindCompletion(space.EmptyState(), /*max_states=*/1);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(StateSpaceTest, FindScheduleSurvivesVeryDeepSchedules) {
  // A schedule tens of thousands of steps long: the DFS must run on an
  // explicit stack — a native-stack recursion of this depth would
  // overflow. Two transactions over disjoint entity sets, each a total
  // order of n locks followed by n unlocks.
  const int kEntitiesPerTxn = 4000;
  auto db = std::make_unique<Database>();
  std::vector<std::pair<StepKind, std::string>> seq1, seq2;
  for (int t = 0; t < 2; ++t) {
    for (int i = 0; i < kEntitiesPerTxn; ++i) {
      std::string name = "e" + std::to_string(t) + "_" + std::to_string(i);
      ASSERT_TRUE(db->AddEntityAtSite(name, "s" + std::to_string(t)).ok());
      auto& seq = t == 0 ? seq1 : seq2;
      seq.emplace_back(StepKind::kLock, name);
    }
    for (int i = 0; i < kEntitiesPerTxn; ++i) {
      std::string name = "e" + std::to_string(t) + "_" + std::to_string(i);
      auto& seq = t == 0 ? seq1 : seq2;
      seq.emplace_back(StepKind::kUnlock, name);
    }
  }
  auto t1 = TransactionBuilder::FromSequence(db.get(), "T1", seq1);
  auto t2 = TransactionBuilder::FromSequence(db.get(), "T2", seq2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  std::vector<Transaction> txns;
  txns.push_back(std::move(*t1));
  txns.push_back(std::move(*t2));
  auto sys = TransactionSystem::Create(db.get(), std::move(txns));
  ASSERT_TRUE(sys.ok());

  StateSpace space(&*sys);
  auto sched = space.FindCompletion(space.EmptyState());
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(sched->has_value());
  EXPECT_EQ((*sched)->size(), static_cast<size_t>(4 * kEntitiesPerTxn));
}

// ---------------------------------------------------------------------
// Reduction graph R(A') — the Figure 1 example is in figures_test.cc;
// here the basics.

TEST(ReductionGraphTest, EmptyPrefixHasNoLockArcs) {
  PairFixture f;
  PrefixSet empty(&f.sys);
  ReductionGraph rg(empty);
  EXPECT_EQ(rg.num_nodes(), 8);
  EXPECT_FALSE(rg.HasCycle());
}

TEST(ReductionGraphTest, DeadlockPrefixHasCycle) {
  PairFixture f;
  // T1 holds x, T2 holds y.
  auto p = PrefixSet::FromNodeSets(&f.sys, {{0}, {0}});
  ASSERT_TRUE(p.ok());
  ReductionGraph rg(*p);
  EXPECT_TRUE(rg.HasCycle());
  auto cycle = rg.FindGlobalCycle();
  EXPECT_GE(cycle.size(), 4u);
  EXPECT_FALSE(rg.CycleToString(f.sys, cycle).empty());
}

TEST(ReductionGraphTest, MappingRoundTrips) {
  PairFixture f;
  auto p = PrefixSet::FromNodeSets(&f.sys, {{0}, {}});
  ASSERT_TRUE(p.ok());
  ReductionGraph rg(*p);
  EXPECT_EQ(rg.num_nodes(), 7);
  EXPECT_EQ(rg.ToLocal(GlobalNode{0, 0}), kInvalidNode);  // Executed.
  NodeId local = rg.ToLocal(GlobalNode{0, 1});
  ASSERT_NE(local, kInvalidNode);
  EXPECT_EQ(rg.ToGlobal(local), (GlobalNode{0, 1}));
}

}  // namespace
}  // namespace wydb
