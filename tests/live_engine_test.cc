// Tests for the wall-clock runtime: StripedLockManager invariants under
// real thread contention (run these under TSan — the CI thread-sanitize
// job does) and LiveEngine session behaviour, including single-thread /
// MPL-1 determinism and the watchdog's deadlock classification.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gen/system_gen.h"
#include "runtime/live_engine.h"
#include "runtime/scheduler.h"
#include "runtime/striped_lock_manager.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;
using AcquireStatus = StripedLockManager::AcquireStatus;

StripedLockManager::Options ManagerOptions(ConflictPolicy policy,
                                           int stripes = 0) {
  StripedLockManager::Options o;
  o.policy = policy;
  o.num_stripes = stripes;
  o.detect_interval_us = 500;
  return o;
}

// ---------------------------------------------------------------------------
// StripedLockManager stress: N threads over overlapping entity sets,
// every policy. The mutual-exclusion oracle is a side array of atomic
// owners checked at grant and release time: a double grant trips it
// immediately. Ascending acquisition order keeps kBlock deadlock-free,
// so termination doubles as the no-lost-wakeup check.
// ---------------------------------------------------------------------------

struct StressOutcome {
  uint64_t granted_rounds = 0;
  uint64_t aborts = 0;
};

StressOutcome RunStress(ConflictPolicy policy, int threads, int entities,
                        int locks_per_round, int rounds, int stripes = 0) {
  StripedLockManager mgr(entities, threads, ManagerOptions(policy, stripes));
  EXPECT_EQ(mgr.num_stripes() & (mgr.num_stripes() - 1), 0);
  if (stripes > 0) EXPECT_EQ(mgr.num_stripes(), stripes);
  std::vector<std::atomic<int>> owner(entities);
  for (auto& o : owner) o.store(-1);
  std::atomic<uint64_t> granted_rounds{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<bool> double_grant{false};

  auto worker = [&](int txn) {
    mgr.SetTimestamp(txn, static_cast<uint64_t>(txn));
    Rng rng(0xC0FFEEull + static_cast<uint64_t>(txn));
    for (int r = 0; r < rounds; ++r) {
      // Distinct entities, ascending: an ordered-acquisition round can
      // block but never join a circular wait.
      std::vector<EntityId> want;
      while (static_cast<int>(want.size()) < locks_per_round) {
        EntityId e = static_cast<EntityId>(
            rng.NextBelow(static_cast<uint64_t>(entities)));
        if (std::find(want.begin(), want.end(), e) == want.end())
          want.push_back(e);
      }
      std::sort(want.begin(), want.end());

      for (;;) {
        mgr.BeginAttempt(txn);
        std::vector<EntityId> held;
        bool aborted = false;
        for (EntityId e : want) {
          AcquireStatus st = mgr.Acquire(txn, e);
          if (st == AcquireStatus::kAborted) {
            aborted = true;
            break;
          }
          ASSERT_EQ(st, AcquireStatus::kGranted);
          int expected = -1;
          if (!owner[e].compare_exchange_strong(expected, txn))
            double_grant.store(true);
          held.push_back(e);
        }
        for (EntityId e : held) {
          if (owner[e].load() != txn) double_grant.store(true);
          owner[e].store(-1);
          mgr.Release(txn, e);
        }
        if (!aborted) {
          granted_rounds.fetch_add(1);
          break;
        }
        aborts.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  EXPECT_FALSE(double_grant.load()) << ConflictPolicyName(policy);
  // Waiter-pool accounting: every queue drained, every entity free.
  EXPECT_EQ(mgr.TotalWaiters(), 0u);
  for (int e = 0; e < entities; ++e) EXPECT_EQ(mgr.HolderOf(e), -1);
  EXPECT_TRUE(mgr.WaitForEdges().empty());
  return StressOutcome{granted_rounds.load(), aborts.load()};
}

TEST(StripedLockManagerStress, BlockPolicy) {
  StressOutcome out = RunStress(ConflictPolicy::kBlock, 8, 12, 3, 150);
  EXPECT_EQ(out.granted_rounds, 8u * 150u);
  EXPECT_EQ(out.aborts, 0u);  // kBlock never aborts anyone.
}

TEST(StripedLockManagerStress, WoundWaitPolicy) {
  StressOutcome out = RunStress(ConflictPolicy::kWoundWait, 8, 12, 3, 150);
  EXPECT_EQ(out.granted_rounds, 8u * 150u);
}

TEST(StripedLockManagerStress, WaitDiePolicy) {
  StressOutcome out = RunStress(ConflictPolicy::kWaitDie, 8, 12, 3, 150);
  EXPECT_EQ(out.granted_rounds, 8u * 150u);
}

TEST(StripedLockManagerStress, DetectPolicy) {
  StressOutcome out = RunStress(ConflictPolicy::kDetect, 8, 12, 3, 150);
  EXPECT_EQ(out.granted_rounds, 8u * 150u);
}

TEST(StripedLockManagerStress, SingleEntityConvoy) {
  // Max contention on one entity: FIFO handoff must pass the lock
  // through every round of every thread — completion is the proof that
  // no wakeup is ever lost, the count that none is duplicated.
  StressOutcome out = RunStress(ConflictPolicy::kBlock, 8, 1, 1, 400);
  EXPECT_EQ(out.granted_rounds, 8u * 400u);
}

TEST(StripedLockManagerStress, SingleStripeForcesSharing) {
  // One stripe = maximal latch sharing: every protocol step contends on
  // the same mutex, the regime most likely to expose ordering bugs.
  StressOutcome out =
      RunStress(ConflictPolicy::kBlock, 6, 16, 2, 200, /*stripes=*/1);
  EXPECT_EQ(out.granted_rounds, 6u * 200u);
}

// ---------------------------------------------------------------------------
// Targeted protocol tests.
// ---------------------------------------------------------------------------

TEST(StripedLockManager, GrantAndReleaseSingleThread) {
  StripedLockManager mgr(4, 2, ManagerOptions(ConflictPolicy::kBlock));
  EXPECT_EQ(mgr.Acquire(0, 2), AcquireStatus::kGranted);
  EXPECT_EQ(mgr.HolderOf(2), 0);
  mgr.Release(0, 2);
  EXPECT_EQ(mgr.HolderOf(2), -1);
  mgr.Release(0, 2);  // Stale release: tolerated.
  EXPECT_EQ(mgr.lock_ops(), 2u);
}

TEST(StripedLockManager, RequestAbortWakesParkedWaiter) {
  StripedLockManager mgr(2, 2, ManagerOptions(ConflictPolicy::kBlock));
  ASSERT_EQ(mgr.Acquire(0, 0), AcquireStatus::kGranted);
  std::atomic<int> status{-1};
  std::thread waiter([&] {
    mgr.BeginAttempt(1);
    status.store(static_cast<int>(mgr.Acquire(1, 0)));
  });
  while (mgr.TotalWaiters() == 0) std::this_thread::yield();
  mgr.RequestAbort(1);
  waiter.join();
  EXPECT_EQ(status.load(), static_cast<int>(AcquireStatus::kAborted));
  EXPECT_EQ(mgr.TotalWaiters(), 0u);
  EXPECT_EQ(mgr.HolderOf(0), 0);  // The holder is untouched.
}

TEST(StripedLockManager, RequestStopWakesParkedWaiter) {
  StripedLockManager mgr(2, 2, ManagerOptions(ConflictPolicy::kBlock));
  ASSERT_EQ(mgr.Acquire(0, 1), AcquireStatus::kGranted);
  std::atomic<int> status{-1};
  std::thread waiter(
      [&] { status.store(static_cast<int>(mgr.Acquire(1, 1))); });
  while (mgr.TotalWaiters() == 0) std::this_thread::yield();
  mgr.RequestStop();
  waiter.join();
  EXPECT_EQ(status.load(), static_cast<int>(AcquireStatus::kStopped));
  EXPECT_EQ(mgr.Acquire(0, 0), AcquireStatus::kStopped);  // Post-stop.
}

TEST(StripedLockManager, WaitDieYoungerRequesterDiesImmediately) {
  StripedLockManager mgr(2, 2, ManagerOptions(ConflictPolicy::kWaitDie));
  mgr.SetTimestamp(0, 0);  // Older.
  mgr.SetTimestamp(1, 1);  // Younger.
  ASSERT_EQ(mgr.Acquire(0, 0), AcquireStatus::kGranted);
  EXPECT_EQ(mgr.Acquire(1, 0), AcquireStatus::kAborted);
  EXPECT_EQ(mgr.TotalWaiters(), 0u);
  EXPECT_EQ(mgr.policy_aborts(), 1u);
}

TEST(StripedLockManager, WoundWaitOlderRequesterWoundsHolder) {
  StripedLockManager mgr(2, 2, ManagerOptions(ConflictPolicy::kWoundWait));
  mgr.SetTimestamp(0, 0);  // Older.
  mgr.SetTimestamp(1, 1);  // Younger.
  mgr.BeginAttempt(1);
  ASSERT_EQ(mgr.Acquire(1, 0), AcquireStatus::kGranted);
  std::atomic<int> status{-1};
  std::thread older([&] {
    mgr.BeginAttempt(0);
    status.store(static_cast<int>(mgr.Acquire(0, 0)));
  });
  // The wound lands on the younger holder: its next Acquire aborts, and
  // once it releases, the parked older transaction gets the grant.
  while (mgr.policy_aborts() == 0) std::this_thread::yield();
  EXPECT_EQ(mgr.Acquire(1, 1), AcquireStatus::kAborted);
  mgr.Release(1, 0);
  older.join();
  EXPECT_EQ(status.load(), static_cast<int>(AcquireStatus::kGranted));
  EXPECT_EQ(mgr.HolderOf(0), 0);
}

TEST(StripedLockManager, DetectBreaksTwoCycleDeadlock) {
  StripedLockManager mgr(2, 2, ManagerOptions(ConflictPolicy::kDetect));
  mgr.SetTimestamp(0, 0);
  mgr.SetTimestamp(1, 1);
  // Rendezvous after the first grants so the circular wait is certain.
  std::atomic<int> armed{0};
  auto arm = [&] {
    armed.fetch_add(1);
    while (armed.load() < 2) std::this_thread::yield();
  };
  std::atomic<int> outcome0{-1}, outcome1{-1};
  std::thread t0([&] {
    mgr.BeginAttempt(0);
    ASSERT_EQ(mgr.Acquire(0, 0), AcquireStatus::kGranted);
    arm();
    outcome0.store(static_cast<int>(mgr.Acquire(0, 1)));
    mgr.Release(0, 1);
    mgr.Release(0, 0);
  });
  std::thread t1([&] {
    mgr.BeginAttempt(1);
    ASSERT_EQ(mgr.Acquire(1, 1), AcquireStatus::kGranted);
    arm();
    outcome1.store(static_cast<int>(mgr.Acquire(1, 0)));
    // Whatever the verdict, unwind so the survivor can finish.
    mgr.Release(1, 0);
    mgr.Release(1, 1);
  });
  t0.join();
  t1.join();
  EXPECT_GE(mgr.detector_runs(), 1u);
  // The youngest on the cycle (txn 1) is the victim; txn 0 survives.
  EXPECT_EQ(outcome0.load(), static_cast<int>(AcquireStatus::kGranted));
  EXPECT_EQ(outcome1.load(), static_cast<int>(AcquireStatus::kAborted));
  EXPECT_EQ(mgr.TotalWaiters(), 0u);
}

// ---------------------------------------------------------------------------
// LiveEngine sessions.
// ---------------------------------------------------------------------------

LiveOptions BaseOptions() {
  LiveOptions o;
  o.rounds = 10;
  o.threads = 4;
  o.watchdog_interval_ms = 100;
  return o;
}

TEST(LiveEngine, RejectsUnboundedSession) {
  auto owned = GenerateSafeSystem({});
  ASSERT_TRUE(owned.ok());
  LiveOptions o;  // Neither rounds nor duration.
  EXPECT_FALSE(RunLive(*owned->system, o).ok());
}

TEST(LiveEngine, SingleThreadIsExactlyDeterministic) {
  auto owned = GenerateSafeSystem({});
  ASSERT_TRUE(owned.ok());
  LiveOptions o = BaseOptions();
  o.threads = 1;
  for (int rep = 0; rep < 2; ++rep) {
    auto r = RunLive(*owned->system, o);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
    EXPECT_FALSE(r->deadlocked);
    EXPECT_EQ(r->commits, static_cast<uint64_t>(
                              owned->system->num_transactions() * o.rounds));
    EXPECT_EQ(r->aborts, 0u);
  }
}

TEST(LiveEngine, MplOneIsExactlyDeterministic) {
  // MPL 1 admits one transaction at a time: no lock conflict can ever
  // form, so counts are exact on any thread count — the property the CI
  // determinism step diffs two CLI runs over.
  auto owned = GenerateSharedChainSystem(6);
  ASSERT_TRUE(owned.ok());
  LiveOptions o = BaseOptions();
  o.mpl = 1;
  for (int rep = 0; rep < 2; ++rep) {
    auto r = RunLive(*owned->system, o);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
    EXPECT_EQ(r->commits, static_cast<uint64_t>(
                              owned->system->num_transactions() * o.rounds));
    EXPECT_EQ(r->aborts, 0u);
    EXPECT_EQ(r->latency.samples, r->commits);
  }
}

TEST(LiveEngine, CertifiedSystemNeverDeadlocksUnderPureBlocking) {
  auto owned = GenerateSharedChainSystem(8);
  ASSERT_TRUE(owned.ok());
  LiveOptions o = BaseOptions();
  o.rounds = 25;
  o.threads = 8;
  o.policy = ConflictPolicy::kBlock;
  auto r = RunLive(*owned->system, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  EXPECT_FALSE(r->deadlocked);
  EXPECT_EQ(r->aborts, 0u);  // Blocking never aborts.
  EXPECT_EQ(r->commits,
            static_cast<uint64_t>(owned->system->num_transactions() * 25));
  EXPECT_GT(r->lock_ops, 0u);
  EXPECT_EQ(r->detector_runs, 0u);  // Fast path: no scans, ever.
}

TEST(LiveEngine, UncertifiedRingDeadlocksAndWatchdogClassifiesIt) {
  // Ring of 3: txn i locks e_i then e_{i+1 mod 3}. With a dwell while
  // holding, three live threads reach the circular wait almost at once;
  // pure blocking with no detection then freezes the session, and the
  // watchdog must classify it instead of hanging the test.
  auto owned = GenerateRingSystem(3);
  ASSERT_TRUE(owned.ok());
  LiveOptions o;
  o.policy = ConflictPolicy::kBlock;
  o.threads = 3;
  o.rounds = 100000;  // The deadlock ends the session, not the bound.
  o.hold_us = 3000;
  o.watchdog_interval_ms = 40;
  auto r = RunLive(*owned->system, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->deadlocked);
  EXPECT_FALSE(r->completed);
  EXPECT_FALSE(r->blocked_txns.empty());
  for (int t : r->blocked_txns) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 3);
  }
}

TEST(LiveEngine, DetectionPoliciesResolveTheSameRing) {
  auto owned = GenerateRingSystem(3);
  ASSERT_TRUE(owned.ok());
  for (ConflictPolicy policy :
       {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie,
        ConflictPolicy::kDetect}) {
    LiveOptions o;
    o.policy = policy;
    o.threads = 3;
    o.rounds = 30;
    o.hold_us = 500;
    o.backoff_us = 100;
    o.watchdog_interval_ms = 500;
    auto r = RunLive(*owned->system, o);
    ASSERT_TRUE(r.ok()) << ConflictPolicyName(policy);
    EXPECT_TRUE(r->completed) << ConflictPolicyName(policy);
    EXPECT_FALSE(r->deadlocked) << ConflictPolicyName(policy);
    EXPECT_EQ(r->commits, 3u * 30u) << ConflictPolicyName(policy);
  }
}

TEST(LiveEngine, MaxRestartsTurnsContentionIntoGiveUp) {
  auto db = MakeDb({{"s1", {"x"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  LiveOptions o;
  o.policy = ConflictPolicy::kWaitDie;
  o.threads = 2;
  o.rounds = 300;
  o.hold_us = 1000;
  o.backoff_us = 50;
  o.max_restarts = 0;  // First abort of any round ends the session.
  auto r = RunLive(sys, o);
  ASSERT_TRUE(r.ok());
  // Two threads dwelling 1ms on one entity for 300 rounds must collide;
  // the first wait-die abort then exceeds max_restarts immediately.
  EXPECT_TRUE(r->gave_up);
  EXPECT_FALSE(r->completed);
  EXPECT_GE(r->aborts, 1u);
}

TEST(LiveEngine, DurationBoundedSessionStopsOnTime) {
  auto owned = GenerateSafeSystem({});
  ASSERT_TRUE(owned.ok());
  LiveOptions o;
  o.duration_ms = 120;
  o.threads = 2;
  o.watchdog_interval_ms = 200;
  auto r = RunLive(*owned->system, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->completed);
  EXPECT_GT(r->commits, 0u);
  EXPECT_GT(r->wall_seconds, 0.1);
  EXPECT_LT(r->wall_seconds, 5.0);
  EXPECT_GT(r->commits_per_sec, 0.0);
  EXPECT_GT(r->lock_ops_per_sec, 0.0);
}

}  // namespace
}  // namespace wydb
