// Tests for common/: Status, Result, Rng, string utilities, CRC32, and
// the bounded TaskPool behind the server's concurrent sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/hash_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace wydb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopySemantics) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "x");
  s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(t.IsNotFound());  // Deep copy, not aliasing.
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kInvalidModel, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  WYDB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::Internal("boom")).status().code() ==
              StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " -> "), "a -> b -> c");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x%d y%s", 3, "z"), "x3 yz");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(Crc32Test, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32/IEEE check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, SeedChainsIncrementalComputation) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 7);
  const uint32_t chained = Crc32(data.data() + 7, data.size() - 7, first);
  EXPECT_EQ(chained, whole);
  EXPECT_NE(Crc32(data.data(), data.size() - 1), whole);
}

TEST(TaskPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    TaskPool pool(4, 64);
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&] { ++ran; }));
    }
    pool.Drain();
    EXPECT_EQ(ran.load(), 64);
    // Drain is terminal: the pool sheds everything afterwards.
    EXPECT_FALSE(pool.TrySubmit([&] { ++ran; }));
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(TaskPoolTest, ShedsWhenTheQueueIsFull) {
  // One worker, held at a barrier: the queue (capacity 2) fills, and
  // the next submit must be refused rather than block the caller —
  // the accept-loop backpressure contract.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> started{0};
  TaskPool pool(1, 2);
  auto blocker = [&] {
    ++started;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  ASSERT_TRUE(pool.TrySubmit(blocker));  // Runs, blocks the worker.
  while (started.load() == 0) std::this_thread::yield();
  ASSERT_TRUE(pool.TrySubmit(blocker));  // Queued (1/2).
  ASSERT_TRUE(pool.TrySubmit(blocker));  // Queued (2/2).
  EXPECT_FALSE(pool.TrySubmit(blocker));  // Full: shed.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Drain();
  EXPECT_EQ(started.load(), 3);
}

TEST(TaskPoolTest, DrainWaitsForRunningTasks) {
  std::atomic<bool> finished{false};
  TaskPool pool(2, 8);
  ASSERT_TRUE(pool.TrySubmit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    finished = true;
  }));
  pool.Drain();
  // Drain must not return while the task is still running.
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace wydb
