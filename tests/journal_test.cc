// Crash-safety tests of the verdict journal (DESIGN.md §13): frame
// round trips, recovery fuzz (truncation at every byte offset, bit
// flips at every byte of the tail record, duplicate tails), torn-tail
// salvage through Open(), injected write/fsync faults with rollback,
// compaction, and the end-to-end server property the journal exists
// for — a rebuilt server re-serves byte-identical verdicts as cache
// hits, even after a kill-shaped torn tail.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "serve/journal.h"
#include "serve/server.h"

namespace wydb {
namespace {

/// A fresh journal path under the test tmpdir; the file is removed
/// first so every test starts from absence.
std::string TempJournalPath(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string path =
      std::string(base != nullptr ? base : "/tmp") + "/wydb_" + name + "_" +
      std::to_string(::getpid()) + ".journal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
  ASSERT_TRUE(out.good());
}

const std::vector<std::string>& SamplePayloads() {
  static const std::vector<std::string>* payloads =
      new std::vector<std::string>{
          "certified: yes\nstates: 12\n",
          "",  // Empty payloads are legal records.
          std::string("binary\0payload\xff\x01", 16),
          std::string(3000, 'x') + "\n",  // Certificate-sized.
      };
  return *payloads;
}

std::string ImageOf(const std::vector<std::string>& payloads) {
  std::string image;
  for (const std::string& p : payloads) image += FrameJournalRecord(p);
  return image;
}

TEST(JournalScanTest, RoundTripsEveryRecord) {
  const auto& payloads = SamplePayloads();
  JournalRecovery rec = ScanJournalImage(ImageOf(payloads));
  EXPECT_EQ(rec.payloads, payloads);
  EXPECT_EQ(rec.valid_bytes, ImageOf(payloads).size());
  EXPECT_EQ(rec.dropped_bytes, 0u);
}

TEST(JournalScanTest, EmptyImageIsEmptyRecovery) {
  JournalRecovery rec = ScanJournalImage("");
  EXPECT_TRUE(rec.payloads.empty());
  EXPECT_EQ(rec.valid_bytes, 0u);
  EXPECT_EQ(rec.dropped_bytes, 0u);
}

/// Truncation fuzz: cutting the image at EVERY byte offset must salvage
/// exactly the records that fit whole before the cut — never garbage,
/// never a refusal, and the salvaged prefix must itself be a clean
/// journal (valid_bytes lands on a record boundary).
TEST(JournalScanTest, TruncationAtEveryOffsetSalvagesTheWholePrefix) {
  const auto& payloads = SamplePayloads();
  const std::string image = ImageOf(payloads);
  // Record end offsets, for computing how many records survive a cut.
  std::vector<size_t> ends;
  {
    size_t pos = 0;
    for (const std::string& p : payloads) {
      pos += 12 + p.size();
      ends.push_back(pos);
    }
  }
  for (size_t cut = 0; cut <= image.size(); ++cut) {
    JournalRecovery rec = ScanJournalImage(image.substr(0, cut));
    size_t expect_records = 0;
    while (expect_records < ends.size() && ends[expect_records] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(rec.payloads.size(), expect_records) << "cut at " << cut;
    for (size_t i = 0; i < expect_records; ++i) {
      ASSERT_EQ(rec.payloads[i], payloads[i]) << "cut at " << cut;
    }
    ASSERT_EQ(rec.valid_bytes, expect_records > 0 ? ends[expect_records - 1]
                                                  : 0u)
        << "cut at " << cut;
    ASSERT_EQ(rec.valid_bytes + rec.dropped_bytes, cut);
  }
}

/// Bit-flip fuzz: flipping any single bit anywhere in the LAST record —
/// magic, length, CRC, or payload — must drop exactly that record and
/// keep every earlier one. (A flip in an earlier record drops from that
/// record on; the tail case is the one crash recovery meets.)
TEST(JournalScanTest, BitFlipsInTheTailRecordDropOnlyTheTail) {
  const auto& payloads = SamplePayloads();
  const std::string image = ImageOf(payloads);
  const size_t last_begin = image.size() - (12 + payloads.back().size());
  for (size_t byte = last_begin; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      JournalRecovery rec = ScanJournalImage(mutated);
      ASSERT_EQ(rec.payloads.size(), payloads.size() - 1)
          << "flip byte " << byte << " bit " << bit;
      ASSERT_EQ(rec.valid_bytes, last_begin);
      for (size_t i = 0; i + 1 < payloads.size(); ++i) {
        ASSERT_EQ(rec.payloads[i], payloads[i]);
      }
    }
  }
}

/// A duplicated tail record (a retried append that hit the disk twice)
/// is just two valid records; replay is idempotent at the cache layer.
TEST(JournalScanTest, DuplicateTailRecordsAreBothSalvaged) {
  const auto& payloads = SamplePayloads();
  std::string image = ImageOf(payloads);
  image += FrameJournalRecord(payloads.back());
  JournalRecovery rec = ScanJournalImage(image);
  ASSERT_EQ(rec.payloads.size(), payloads.size() + 1);
  EXPECT_EQ(rec.payloads.back(), payloads.back());
  EXPECT_EQ(rec.payloads[rec.payloads.size() - 2], payloads.back());
  EXPECT_EQ(rec.dropped_bytes, 0u);
}

TEST(JournalScanTest, GarbageBeforeTheMagicStopsTheScan) {
  std::string image = "not a journal at all";
  JournalRecovery rec = ScanJournalImage(image);
  EXPECT_TRUE(rec.payloads.empty());
  EXPECT_EQ(rec.dropped_bytes, image.size());
}

TEST(JournalTest, AppendsAndRecoversAcrossReopen) {
  const std::string path = TempJournalPath("reopen");
  JournalOptions opts;
  opts.fsync_every = 1;
  {
    JournalRecovery rec;
    auto j = Journal::Open(path, opts, &rec);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    EXPECT_TRUE(rec.payloads.empty());
    for (const std::string& p : SamplePayloads()) {
      ASSERT_TRUE(j->Append(p).ok());
    }
    EXPECT_EQ(j->records(), SamplePayloads().size());
  }
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(rec.payloads, SamplePayloads());
  EXPECT_EQ(rec.dropped_bytes, 0u);
  std::remove(path.c_str());
}

/// The kill -9 shape: a full journal plus half of a final record on
/// disk. Open must salvage the prefix, truncate the torn tail off the
/// file, and leave a journal that cleanly accepts new appends.
TEST(JournalTest, OpenSalvagesATornTailAndKeepsAppending) {
  const std::string path = TempJournalPath("torn");
  const auto& payloads = SamplePayloads();
  std::string image = ImageOf(payloads);
  const std::string torn = FrameJournalRecord("never fully written");
  image += torn.substr(0, torn.size() / 2);
  WriteFile(path, image);

  JournalOptions opts;
  opts.fsync_every = 1;
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok()) << j.status().ToString();
  EXPECT_EQ(rec.payloads, payloads);
  EXPECT_EQ(rec.dropped_bytes, torn.size() / 2);
  // The torn bytes are gone from disk, not just skipped.
  EXPECT_EQ(ReadFile(path).size(), rec.valid_bytes);

  ASSERT_TRUE(j->Append("after the crash").ok());
  JournalRecovery rec2 = ScanJournalImage(ReadFile(path));
  ASSERT_EQ(rec2.payloads.size(), payloads.size() + 1);
  EXPECT_EQ(rec2.payloads.back(), "after the crash");
  EXPECT_EQ(rec2.dropped_bytes, 0u);
  std::remove(path.c_str());
}

/// An injected short write (power loss mid-append) must report the
/// error, roll the file back to the last good record, and leave the
/// journal usable: the next append lands cleanly.
TEST(JournalTest, ShortWriteRollsBackAndTheJournalStaysUsable) {
  const std::string path = TempJournalPath("shortwrite");
  JournalOptions opts;
  opts.fsync_every = 0;
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok());
  ASSERT_TRUE(j->Append("good record one").ok());
  const uint64_t good_bytes = j->bytes();

  FaultInjector inject;
  inject.fault = FaultInjector::Fault::kShortWrite;
  inject.trigger_op = 1;
  j->set_fault_injector(&inject);
  Status st = j->Append("the doomed record");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(inject.fired);
  EXPECT_EQ(j->bytes(), good_bytes);  // Rolled back.
  EXPECT_EQ(j->records(), 1u);

  j->set_fault_injector(nullptr);
  ASSERT_TRUE(j->Append("good record two").ok());
  JournalRecovery rec2 = ScanJournalImage(ReadFile(path));
  ASSERT_EQ(rec2.payloads.size(), 2u);
  EXPECT_EQ(rec2.payloads[0], "good record one");
  EXPECT_EQ(rec2.payloads[1], "good record two");
  EXPECT_EQ(rec2.dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(JournalTest, FailedWriteRollsBackToo) {
  const std::string path = TempJournalPath("failwrite");
  JournalOptions opts;
  opts.fsync_every = 0;
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok());
  FaultInjector inject;
  inject.fault = FaultInjector::Fault::kFailWrite;
  inject.trigger_op = 1;
  j->set_fault_injector(&inject);
  EXPECT_FALSE(j->Append("never lands").ok());
  j->set_fault_injector(nullptr);
  ASSERT_TRUE(j->Append("lands").ok());
  JournalRecovery rec2 = ScanJournalImage(ReadFile(path));
  ASSERT_EQ(rec2.payloads.size(), 1u);
  EXPECT_EQ(rec2.payloads[0], "lands");
  std::remove(path.c_str());
}

TEST(JournalTest, FsyncFaultSurfacesWithoutCorruptingTheFile) {
  const std::string path = TempJournalPath("failfsync");
  JournalOptions opts;
  opts.fsync_every = 1;  // Every append syncs, so the fault fires inline.
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok());
  FaultInjector inject;
  inject.fault = FaultInjector::Fault::kFailFsync;
  inject.trigger_op = 2;  // Op 1 is the record's write, op 2 its fsync.
  j->set_fault_injector(&inject);
  Status st = j->Append("written but not provably durable");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(inject.fired);
  j->set_fault_injector(nullptr);
  // The bytes reached the file even though durability wasn't confirmed.
  JournalRecovery rec2 = ScanJournalImage(ReadFile(path));
  ASSERT_EQ(rec2.payloads.size(), 1u);
  EXPECT_EQ(rec2.payloads[0], "written but not provably durable");
  std::remove(path.c_str());
}

TEST(JournalTest, CompactionReplacesTheFileWithTheSnapshot) {
  const std::string path = TempJournalPath("compact");
  JournalOptions opts;
  opts.fsync_every = 1;
  JournalRecovery rec;
  auto j = Journal::Open(path, opts, &rec);
  ASSERT_TRUE(j.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(j->Append("stale " + std::to_string(i)).ok());
  }
  ASSERT_TRUE(j->Compact({"live a", "live b"}).ok());
  EXPECT_EQ(j->records(), 2u);
  JournalRecovery rec2 = ScanJournalImage(ReadFile(path));
  ASSERT_EQ(rec2.payloads.size(), 2u);
  EXPECT_EQ(rec2.payloads[0], "live a");
  EXPECT_EQ(rec2.payloads[1], "live b");
  // Appends after compaction extend the new inode, not the old one.
  ASSERT_TRUE(j->Append("live c").ok());
  EXPECT_EQ(ScanJournalImage(ReadFile(path)).payloads.size(), 3u);
  std::remove(path.c_str());
}

// --- Server-level recovery: the property the journal exists for. ---

constexpr char kDeadlockPair[] =
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Ly Lx Uy Ux\n";

constexpr char kCertifiedPair[] =
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Lx Ly Ux Uy\n";

/// kDeadlockPair, renamed and reordered: must hit the recovered cache.
constexpr char kDeadlockPairPermuted[] =
    "site a2: beta\n"
    "site a1: alpha\n"
    "txn B: Lbeta Lalpha Ubeta Ualpha\n"
    "txn A: Lalpha Lbeta Ualpha Ubeta\n";

std::string Drive(Server& server, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  server.ServeStream(in, out);
  return out.str();
}

std::string CertifyRequest(const std::string& workload) {
  return "certify\n" + workload + "end\n";
}

/// Extracts the body of the first response (through the lone '.').
std::string FirstResponse(const std::string& out) {
  size_t dot = out.find("\n.\n");
  return dot == std::string::npos ? out : out.substr(0, dot + 3);
}

/// Blanks the wall-clock field so responses can be compared byte-for-
/// byte: elapsed_us is the one legitimately nondeterministic token.
std::string StripElapsed(std::string s) {
  size_t pos = 0;
  while ((pos = s.find("elapsed_us=", pos)) != std::string::npos) {
    size_t end = pos + 11;
    while (end < s.size() && s[end] >= '0' && s[end] <= '9') ++end;
    s.erase(pos, end - pos);
  }
  return s;
}

TEST(ServerJournalTest, RestartReServesByteIdenticalVerdictsFromTheJournal) {
  const std::string path = TempJournalPath("server_restart");
  ServerOptions opts;
  opts.journal_path = path;
  opts.journal_fsync_every = 1;

  std::string first_verdict;
  {
    auto server = Server::Create(opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    first_verdict = FirstResponse(Drive(*server, CertifyRequest(kDeadlockPair)));
    Drive(*server, CertifyRequest(kCertifiedPair));
    EXPECT_EQ(server->stats().journal_appends, 2u);
    EXPECT_EQ(server->stats().journal_errors, 0u);
  }

  auto reborn = Server::Create(opts);
  ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
  EXPECT_EQ(reborn->stats().journal_recovered, 2u);
  EXPECT_EQ(reborn->stats().journal_salvaged_bytes, 0u);

  // Identical resubmission: byte-identical response (modulo the wall
  // clock), served from cache.
  const std::string again =
      FirstResponse(Drive(*reborn, CertifyRequest(kDeadlockPair)));
  std::string expected = StripElapsed(first_verdict);
  size_t src = expected.find("source=full");
  ASSERT_NE(src, std::string::npos) << expected;
  expected.replace(src, 11, "source=cache");
  EXPECT_EQ(StripElapsed(again), expected);
  EXPECT_EQ(reborn->stats().cache_hits, 1u);

  // Permuted resubmission hits too (canonical keys survive the journal).
  const std::string permuted =
      Drive(*reborn, CertifyRequest(kDeadlockPairPermuted));
  EXPECT_NE(permuted.find("source=cache"), std::string::npos) << permuted;
  EXPECT_EQ(reborn->stats().cache_hits, 2u);
  EXPECT_EQ(reborn->stats().cache_misses, 0u);
  EXPECT_EQ(reborn->stats().full_certifications, 0u);
  std::remove(path.c_str());
}

TEST(ServerJournalTest, TornJournalTailIsSalvagedNotFatal) {
  const std::string path = TempJournalPath("server_torn");
  ServerOptions opts;
  opts.journal_path = path;
  opts.journal_fsync_every = 1;
  {
    auto server = Server::Create(opts);
    ASSERT_TRUE(server.ok());
    Drive(*server, CertifyRequest(kDeadlockPair));
  }
  // Tear the tail: chop the last 10 bytes and append garbage, the
  // post-kill disk state after an unsynced append.
  std::string image = ReadFile(path);
  ASSERT_GT(image.size(), 10u);
  image.resize(image.size() - 10);
  image += "\x7f garbage";
  WriteFile(path, image);

  auto reborn = Server::Create(opts);
  ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
  EXPECT_EQ(reborn->stats().journal_recovered, 0u);
  EXPECT_GT(reborn->stats().journal_salvaged_bytes, 0u);
  // The server still serves — the verdict is just recomputed.
  const std::string out = Drive(*reborn, CertifyRequest(kDeadlockPair));
  EXPECT_NE(out.find("source=full"), std::string::npos) << out;
  std::remove(path.c_str());
}

TEST(ServerJournalTest, CompactionKeepsTheJournalNearTheCacheSize) {
  const std::string path = TempJournalPath("server_compact");
  ServerOptions opts;
  opts.journal_path = path;
  opts.journal_fsync_every = 1;
  opts.cache_entries = 2;
  opts.journal_compact_slack = 0;  // Compact as soon as records > cache.
  auto server = Server::Create(opts);
  ASSERT_TRUE(server.ok());
  // Three distinct systems through a 2-entry cache: the journal would
  // grow without bound if compaction never ran.
  Drive(*server, CertifyRequest(kDeadlockPair));
  Drive(*server, CertifyRequest(kCertifiedPair));
  Drive(*server,
        CertifyRequest("site s1: x\ntxn T1: Lx Ux\ntxn T2: Lx Ux\n"));
  EXPECT_GT(server->stats().journal_compactions, 0u);
  EXPECT_EQ(server->stats().journal_errors, 0u);
  JournalRecovery rec = ScanJournalImage(ReadFile(path));
  EXPECT_LE(rec.payloads.size(), 2u + 0u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace wydb
