// Tests for the workload text format and its round-tripping, including
// the replication stanzas (`sites`, `copies`, `latency`).
#include <gtest/gtest.h>

#include "analysis/multi_analyzer.h"
#include "common/random.h"
#include "gen/system_gen.h"
#include "io/text_format.h"

namespace wydb {
namespace {

constexpr char kBanking[] = R"(
# two branches
site branch1: alice bob
site branch2: carol dave

txn transfer: Lalice Lcarol Ualice Ucarol
txn audit: Lcarol Ldave Lalice Lbob Ucarol Udave Ualice Ubob
)";

TEST(TextFormatTest, ParsesSitesAndTransactions) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->db->num_sites(), 2);
  EXPECT_EQ(sys->db->num_entities(), 4);
  EXPECT_EQ(sys->system->num_transactions(), 2);
  EXPECT_EQ(sys->system->txn(0).name(), "transfer");
  EXPECT_EQ(sys->system->txn(0).num_steps(), 4);
  EXPECT_EQ(sys->db->SiteOf(sys->db->FindEntity("dave")),
            sys->db->FindSite("branch2"));
}

TEST(TextFormatTest, ParsedSystemIsAnalyzable) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  auto report = CheckSystemSafeAndDeadlockFree(*sys->system);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe_and_deadlock_free);  // Opposite orders.
}

TEST(TextFormatTest, SegmentsAreUnordered) {
  auto sys = ParseSystem(
      "site s1: x\n"
      "site s2: y\n"
      "txn T: Lx Ux ; Ly Uy\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  NodeId lx = t.LockNode(sys->db->FindEntity("x"));
  NodeId ly = t.LockNode(sys->db->FindEntity("y"));
  EXPECT_FALSE(t.Comparable(lx, ly));
}

TEST(TextFormatTest, CommentsAndBlanksIgnored) {
  auto sys = ParseSystem(
      "# header\n"
      "\n"
      "site s: x   # trailing comment\n"
      "txn T: Lx Ux\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->system->num_transactions(), 1);
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  auto bad = ParseSystem("site s: x\nbogus directive\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, RejectsBadStepToken) {
  auto bad = ParseSystem("site s: x\ntxn T: Zx\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bad step"), std::string::npos);
  // The misuse contract: the diagnostic names the failing line and spells
  // out the accepted tokens, shared mode included.
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(bad.status().message().find("S<entity>"), std::string::npos);
}

TEST(TextFormatTest, ParsesSharedSteps) {
  auto sys = ParseSystem(
      "site s1: g x\n"
      "site s2: y\n"
      "txn T: Lg Sx Sy Uy Ux Ug\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  const Database& db = *sys->db;
  EXPECT_EQ(t.LockModeOf(db.FindEntity("g")), LockMode::kExclusive);
  EXPECT_EQ(t.LockModeOf(db.FindEntity("x")), LockMode::kShared);
  EXPECT_EQ(t.LockModeOf(db.FindEntity("y")), LockMode::kShared);
  // The Unlock steps carry their Lock's mode (Create normalization).
  NodeId ux = t.UnlockNode(db.FindEntity("x"));
  EXPECT_EQ(t.step(ux).mode, LockMode::kShared);
  NodeId ug = t.UnlockNode(db.FindEntity("g"));
  EXPECT_EQ(t.step(ug).mode, LockMode::kExclusive);
}

TEST(TextFormatTest, SharedStepsRoundTrip) {
  auto sys = ParseSystem(
      "site s1: g x\n"
      "site s2: y\n"
      "txn R: Lg Sx Sy Uy Ux Ug\n"
      "txn W: Lg Lx Ux Ug\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  std::string text = SerializeSystem(*sys->system);
  // S tokens survive serialization...
  EXPECT_NE(text.find("Sx"), std::string::npos);
  EXPECT_NE(text.find("Sy"), std::string::npos);
  // ...and X steps are NOT rewritten as shared.
  EXPECT_NE(text.find("Lg"), std::string::npos);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  for (int i = 0; i < sys->system->num_transactions(); ++i) {
    EXPECT_EQ(again->system->txn(i).DebugString(),
              sys->system->txn(i).DebugString());
  }
}

TEST(TextFormatTest, SharedAndExclusiveAccessOfOneEntityStillUnique) {
  // S and L on the same entity are two locks of it — rejected like any
  // duplicate access, with the line named.
  auto bad = ParseSystem("site s: x\ntxn T: Sx Lx Ux\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, RejectsUnknownEntity) {
  auto bad = ParseSystem("site s: x\ntxn T: Ly Uy\n");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RejectsModelViolations) {
  // Unlock before lock within a segment chain.
  auto bad = ParseSystem("site s: x\ntxn T: Ux Lx\n");
  EXPECT_FALSE(bad.ok());
  // Same-site steps in unordered segments violate the site total order.
  auto bad2 = ParseSystem("site s: x y\ntxn T: Lx Ux ; Ly Uy\n");
  EXPECT_FALSE(bad2.ok());
}

TEST(TextFormatTest, RejectsDuplicateSite) {
  EXPECT_FALSE(ParseSystem("site s: x\nsite s: y\n").ok());
}

TEST(TextFormatTest, RejectsEmptyTransaction) {
  EXPECT_FALSE(ParseSystem("site s: x\ntxn T:\n").ok());
}

TEST(TextFormatTest, RoundTripsTotalOrders) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  std::string text = SerializeSystem(*sys->system);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  ASSERT_EQ(again->system->num_transactions(),
            sys->system->num_transactions());
  for (int i = 0; i < sys->system->num_transactions(); ++i) {
    EXPECT_EQ(again->system->txn(i).DebugString(),
              sys->system->txn(i).DebugString());
  }
}

// ---------------------------------------------------------------------
// Replication stanzas.

constexpr char kReplicated[] = R"(
sites: backup
site s1: x
site s2: y
copies x: s1 backup
copies y: s2 backup s1
latency: 20 7 2
txn T: Lx Ly Ux Uy
)";

TEST(TextFormatTest, ParsesReplicationStanzas) {
  auto spec = ParseWorkload(kReplicated);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Database& db = *spec->owned.db;
  EXPECT_EQ(db.num_sites(), 3);
  EXPECT_TRUE(db.EntitiesAt(db.FindSite("backup")).empty());

  ASSERT_NE(spec->owned.placement, nullptr);
  const CopyPlacement& placement = *spec->owned.placement;
  EXPECT_TRUE(placement.IsReplicated());
  EXPECT_EQ(placement.DegreeOf(db.FindEntity("x")), 2);
  EXPECT_EQ(placement.DegreeOf(db.FindEntity("y")), 3);
  // The first listed site is the primary.
  EXPECT_EQ(placement.PrimaryOf(db.FindEntity("y")), db.FindSite("s2"));

  EXPECT_TRUE(spec->has_latency);
  EXPECT_EQ(spec->latency.base, 20u);
  EXPECT_EQ(spec->latency.jitter, 7u);
  EXPECT_EQ(spec->latency.local, 2u);
}

TEST(TextFormatTest, BareSiteLineCreatesTheSite) {
  auto sys = ParseSystem("site lonely:\nsite s: x\ntxn T: Lx Ux\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_NE(sys->db->FindSite("lonely"), kInvalidSite);
}

TEST(TextFormatTest, RejectsBadReplicationStanzas) {
  // Unknown entity / site.
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies z: s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies x: nope\ntxn T: Lx Ux\n").ok());
  // Duplicate copy site and duplicate stanza.
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies x: s s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("sites: a\nsite s: x\ncopies x: s\ncopies x: a\n"
                             "txn T: Lx Ux\n")
                   .ok());
  // Malformed latency.
  EXPECT_FALSE(ParseWorkload("site s: x\nlatency: 1 2\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(
      ParseWorkload("site s: x\nlatency: a b c\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("site s: x\nlatency: 1 2 3\nlatency: 1 2 3\n"
                             "txn T: Lx Ux\n")
                   .ok());
  // Duplicate site declarations across stanza kinds.
  EXPECT_FALSE(ParseWorkload("sites: s\nsites: s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseSystem("site s: x\nsite s: y\n").ok());
}

// Every malformed stanza class must surface as a Status that names the
// failing line — no crash, no silent default. Table-driven so each new
// stanza kind picks up a negative case alongside its parser.
TEST(TextFormatTest, NegativeStanzasNameTheFailingLine) {
  struct Case {
    const char* label;
    const char* text;
    int line;
  };
  const Case kCases[] = {
      {"sites with no names", "site s: x\nsites:\ntxn T: Lx Ux\n", 2},
      {"site header missing colon", "site s x\ntxn T: Lx Ux\n", 1},
      {"site with empty name", "site :\ntxn T: Lx Ux\n", 1},
      {"duplicate entity at one site", "site s: x x\ntxn T: Lx Ux\n", 1},
      {"duplicate entity across sites",
       "site s: x\nsite t: x\ntxn T: Lx Ux\n", 2},
      {"duplicate site header", "site s: x\nsite s: y\ntxn T: Lx Ux\n", 2},
      {"copies missing colon", "site s: x\ncopies x s\ntxn T: Lx Ux\n", 2},
      {"copies with no sites", "site s: x\ncopies x:\ntxn T: Lx Ux\n", 2},
      {"copies with empty entity", "site s: x\ncopies :\ntxn T: Lx Ux\n",
       2},
      {"copies of unknown entity", "site s: x\ncopies z: s\ntxn T: Lx Ux\n",
       2},
      {"copies at out-of-range site",
       "site s: x\ncopies x: s9\ntxn T: Lx Ux\n", 2},
      {"copies repeating a site", "site s: x\ncopies x: s s\ntxn T: Lx Ux\n",
       2},
      {"duplicate copies stanza",
       "sites: a\nsite s: x\ncopies x: s\ncopies x: a\ntxn T: Lx Ux\n", 4},
      {"latency wrong arity", "site s: x\nlatency: 1 2\ntxn T: Lx Ux\n", 2},
      {"latency non-numeric", "site s: x\nlatency: a b c\ntxn T: Lx Ux\n",
       2},
      {"latency negative", "site s: x\nlatency: -1 0 0\ntxn T: Lx Ux\n", 2},
      {"latency overflow",
       "site s: x\nlatency: 99999999999999999999999 0 0\ntxn T: Lx Ux\n",
       2},
      {"duplicate latency stanza",
       "site s: x\nlatency: 1 2 3\nlatency: 1 2 3\ntxn T: Lx Ux\n", 3},
      {"txn header missing colon", "site s: x\ntxn T Lx Ux\n", 2},
      {"txn with empty name", "site s: x\ntxn : Lx Ux\n", 2},
      {"txn with no steps", "site s: x\ntxn T:\n", 2},
      {"bad step token", "site s: x\ntxn T: Qx\n", 2},
      {"bare L step token", "site s: x\ntxn T: L\n", 2},
      {"unknown directive", "site s: x\nfrobnicate: 1\ntxn T: Lx Ux\n", 2},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.label);
    auto parsed = ParseWorkload(c.text);
    ASSERT_FALSE(parsed.ok());
    const std::string want = "line " + std::to_string(c.line);
    EXPECT_NE(parsed.status().message().find(want), std::string::npos)
        << "got: " << parsed.status().ToString();
  }
}

TEST(TextFormatTest, ReplicatedRoundTripPreservesEverything) {
  auto spec = ParseWorkload(kReplicated);
  ASSERT_TRUE(spec.ok());
  std::string text =
      SerializeWorkload(*spec->owned.system, spec->owned.placement.get(),
                        &spec->latency);
  auto again = ParseWorkload(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;

  const Database& db = *spec->owned.db;
  const Database& db2 = *again->owned.db;
  EXPECT_EQ(db2.num_sites(), db.num_sites());
  ASSERT_NE(again->owned.placement, nullptr);
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    EntityId e2 = db2.FindEntity(db.EntityName(e));
    ASSERT_NE(e2, kInvalidEntity);
    const auto& sites = spec->owned.placement->CopiesOf(e);
    const auto& sites2 = again->owned.placement->CopiesOf(e2);
    ASSERT_EQ(sites2.size(), sites.size());
    for (size_t k = 0; k < sites.size(); ++k) {
      EXPECT_EQ(db2.SiteName(sites2[k]), db.SiteName(sites[k]));
    }
  }
  EXPECT_TRUE(again->has_latency);
  EXPECT_EQ(again->latency.base, spec->latency.base);
  EXPECT_EQ(again->latency.jitter, spec->latency.jitter);
  EXPECT_EQ(again->latency.local, spec->latency.local);
}

// Property test: random systems with random placements and latency
// models survive parse -> print -> parse with all structure intact.
TEST(TextFormatTest, RandomReplicatedWorkloadsRoundTrip) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RandomSystemOptions gopts;
    gopts.num_sites = 3;
    gopts.entities_per_site = 2;
    gopts.num_transactions = 3;
    gopts.entities_per_txn = 3;
    gopts.seed = seed;
    auto sys = GenerateRandomSystem(gopts);
    ASSERT_TRUE(sys.ok());
    Rng rng(seed * 7919);
    ASSERT_TRUE(
        ReplicateRoundRobin(&*sys, 1 + static_cast<int>(rng.NextBelow(3)))
            .ok());
    LatencyModel latency;
    latency.base = 1 + rng.NextBelow(50);
    latency.jitter = rng.NextBelow(20);
    latency.local = 1 + rng.NextBelow(3);

    std::string text = SerializeWorkload(*sys->system, sys->placement.get(),
                                         &latency);
    auto again = ParseWorkload(text);
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;

    // Transactions round-trip (total orders exactly).
    ASSERT_EQ(again->owned.system->num_transactions(),
              sys->system->num_transactions());
    EXPECT_TRUE(again->has_latency);
    EXPECT_EQ(again->latency.base, latency.base);
    EXPECT_EQ(again->latency.jitter, latency.jitter);
    EXPECT_EQ(again->latency.local, latency.local);
    const Database& db = *sys->db;
    const Database& db2 = *again->owned.db;
    if (!sys->placement->IsReplicated()) {
      // A single-copy placement serializes to no `copies` lines and
      // round-trips to the equivalent null placement.
      EXPECT_EQ(again->owned.placement, nullptr);
      continue;
    }
    // Placement round-trips by name.
    ASSERT_NE(again->owned.placement, nullptr);
    for (EntityId e = 0; e < db.num_entities(); ++e) {
      EntityId e2 = db2.FindEntity(db.EntityName(e));
      ASSERT_NE(e2, kInvalidEntity);
      const auto& sites = sys->placement->CopiesOf(e);
      const auto& sites2 = again->owned.placement->CopiesOf(e2);
      ASSERT_EQ(sites2.size(), sites.size()) << "seed " << seed;
      for (size_t k = 0; k < sites.size(); ++k) {
        EXPECT_EQ(db2.SiteName(sites2[k]), db.SiteName(sites[k]));
      }
    }
  }
}

}  // namespace
}  // namespace wydb
