// Tests for the workload text format and its round-tripping.
#include <gtest/gtest.h>

#include "analysis/multi_analyzer.h"
#include "io/text_format.h"

namespace wydb {
namespace {

constexpr char kBanking[] = R"(
# two branches
site branch1: alice bob
site branch2: carol dave

txn transfer: Lalice Lcarol Ualice Ucarol
txn audit: Lcarol Ldave Lalice Lbob Ucarol Udave Ualice Ubob
)";

TEST(TextFormatTest, ParsesSitesAndTransactions) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->db->num_sites(), 2);
  EXPECT_EQ(sys->db->num_entities(), 4);
  EXPECT_EQ(sys->system->num_transactions(), 2);
  EXPECT_EQ(sys->system->txn(0).name(), "transfer");
  EXPECT_EQ(sys->system->txn(0).num_steps(), 4);
  EXPECT_EQ(sys->db->SiteOf(sys->db->FindEntity("dave")),
            sys->db->FindSite("branch2"));
}

TEST(TextFormatTest, ParsedSystemIsAnalyzable) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  auto report = CheckSystemSafeAndDeadlockFree(*sys->system);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe_and_deadlock_free);  // Opposite orders.
}

TEST(TextFormatTest, SegmentsAreUnordered) {
  auto sys = ParseSystem(
      "site s1: x\n"
      "site s2: y\n"
      "txn T: Lx Ux ; Ly Uy\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  NodeId lx = t.LockNode(sys->db->FindEntity("x"));
  NodeId ly = t.LockNode(sys->db->FindEntity("y"));
  EXPECT_FALSE(t.Comparable(lx, ly));
}

TEST(TextFormatTest, CommentsAndBlanksIgnored) {
  auto sys = ParseSystem(
      "# header\n"
      "\n"
      "site s: x   # trailing comment\n"
      "txn T: Lx Ux\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->system->num_transactions(), 1);
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  auto bad = ParseSystem("site s: x\nbogus directive\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, RejectsBadStepToken) {
  auto bad = ParseSystem("site s: x\ntxn T: Zx\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bad step"), std::string::npos);
}

TEST(TextFormatTest, RejectsUnknownEntity) {
  auto bad = ParseSystem("site s: x\ntxn T: Ly Uy\n");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RejectsModelViolations) {
  // Unlock before lock within a segment chain.
  auto bad = ParseSystem("site s: x\ntxn T: Ux Lx\n");
  EXPECT_FALSE(bad.ok());
  // Same-site steps in unordered segments violate the site total order.
  auto bad2 = ParseSystem("site s: x y\ntxn T: Lx Ux ; Ly Uy\n");
  EXPECT_FALSE(bad2.ok());
}

TEST(TextFormatTest, RejectsDuplicateSite) {
  EXPECT_FALSE(ParseSystem("site s: x\nsite s: y\n").ok());
}

TEST(TextFormatTest, RejectsEmptyTransaction) {
  EXPECT_FALSE(ParseSystem("site s: x\ntxn T:\n").ok());
}

TEST(TextFormatTest, RoundTripsTotalOrders) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  std::string text = SerializeSystem(*sys->system);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  ASSERT_EQ(again->system->num_transactions(),
            sys->system->num_transactions());
  for (int i = 0; i < sys->system->num_transactions(); ++i) {
    EXPECT_EQ(again->system->txn(i).DebugString(),
              sys->system->txn(i).DebugString());
  }
}

}  // namespace
}  // namespace wydb
