// Tests for the workload text format and its round-tripping, including
// the replication stanzas (`sites`, `copies`, `latency`), the arc-token
// partial-order syntax, and the parse∘serialize identity on the step
// partial order.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "gen/system_gen.h"
#include "io/text_format.h"

namespace wydb {
namespace {

constexpr char kBanking[] = R"(
# two branches
site branch1: alice bob
site branch2: carol dave

txn transfer: Lalice Lcarol Ualice Ucarol
txn audit: Lcarol Ldave Lalice Lbob Ucarol Udave Ualice Ubob
)";

TEST(TextFormatTest, ParsesSitesAndTransactions) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->db->num_sites(), 2);
  EXPECT_EQ(sys->db->num_entities(), 4);
  EXPECT_EQ(sys->system->num_transactions(), 2);
  EXPECT_EQ(sys->system->txn(0).name(), "transfer");
  EXPECT_EQ(sys->system->txn(0).num_steps(), 4);
  EXPECT_EQ(sys->db->SiteOf(sys->db->FindEntity("dave")),
            sys->db->FindSite("branch2"));
}

TEST(TextFormatTest, ParsedSystemIsAnalyzable) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  auto report = CheckSystemSafeAndDeadlockFree(*sys->system);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe_and_deadlock_free);  // Opposite orders.
}

TEST(TextFormatTest, SegmentsAreUnordered) {
  auto sys = ParseSystem(
      "site s1: x\n"
      "site s2: y\n"
      "txn T: Lx Ux ; Ly Uy\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  NodeId lx = t.LockNode(sys->db->FindEntity("x"));
  NodeId ly = t.LockNode(sys->db->FindEntity("y"));
  EXPECT_FALSE(t.Comparable(lx, ly));
}

TEST(TextFormatTest, CommentsAndBlanksIgnored) {
  auto sys = ParseSystem(
      "# header\n"
      "\n"
      "site s: x   # trailing comment\n"
      "txn T: Lx Ux\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->system->num_transactions(), 1);
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  auto bad = ParseSystem("site s: x\nbogus directive\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, RejectsBadStepToken) {
  auto bad = ParseSystem("site s: x\ntxn T: Zx\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bad step"), std::string::npos);
  // The misuse contract: the diagnostic names the failing line and spells
  // out the accepted tokens, shared mode included.
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(bad.status().message().find("S<entity>"), std::string::npos);
}

TEST(TextFormatTest, ParsesSharedSteps) {
  auto sys = ParseSystem(
      "site s1: g x\n"
      "site s2: y\n"
      "txn T: Lg Sx Sy Uy Ux Ug\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  const Database& db = *sys->db;
  EXPECT_EQ(t.LockModeOf(db.FindEntity("g")), LockMode::kExclusive);
  EXPECT_EQ(t.LockModeOf(db.FindEntity("x")), LockMode::kShared);
  EXPECT_EQ(t.LockModeOf(db.FindEntity("y")), LockMode::kShared);
  // The Unlock steps carry their Lock's mode (Create normalization).
  NodeId ux = t.UnlockNode(db.FindEntity("x"));
  EXPECT_EQ(t.step(ux).mode, LockMode::kShared);
  NodeId ug = t.UnlockNode(db.FindEntity("g"));
  EXPECT_EQ(t.step(ug).mode, LockMode::kExclusive);
}

TEST(TextFormatTest, SharedStepsRoundTrip) {
  auto sys = ParseSystem(
      "site s1: g x\n"
      "site s2: y\n"
      "txn R: Lg Sx Sy Uy Ux Ug\n"
      "txn W: Lg Lx Ux Ug\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  std::string text = SerializeSystem(*sys->system);
  // S tokens survive serialization...
  EXPECT_NE(text.find("Sx"), std::string::npos);
  EXPECT_NE(text.find("Sy"), std::string::npos);
  // ...and X steps are NOT rewritten as shared.
  EXPECT_NE(text.find("Lg"), std::string::npos);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  for (int i = 0; i < sys->system->num_transactions(); ++i) {
    EXPECT_EQ(again->system->txn(i).DebugString(),
              sys->system->txn(i).DebugString());
  }
}

TEST(TextFormatTest, SharedAndExclusiveAccessOfOneEntityStillUnique) {
  // S and L on the same entity are two locks of it — rejected like any
  // duplicate access, with the line named.
  auto bad = ParseSystem("site s: x\ntxn T: Sx Lx Ux\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, RejectsUnknownEntity) {
  auto bad = ParseSystem("site s: x\ntxn T: Ly Uy\n");
  EXPECT_FALSE(bad.ok());
}

TEST(TextFormatTest, RejectsModelViolations) {
  // Unlock before lock within a segment chain.
  auto bad = ParseSystem("site s: x\ntxn T: Ux Lx\n");
  EXPECT_FALSE(bad.ok());
  // Same-site steps in unordered segments violate the site total order.
  auto bad2 = ParseSystem("site s: x y\ntxn T: Lx Ux ; Ly Uy\n");
  EXPECT_FALSE(bad2.ok());
}

TEST(TextFormatTest, RejectsDuplicateSite) {
  EXPECT_FALSE(ParseSystem("site s: x\nsite s: y\n").ok());
}

TEST(TextFormatTest, RejectsEmptyTransaction) {
  EXPECT_FALSE(ParseSystem("site s: x\ntxn T:\n").ok());
}

TEST(TextFormatTest, RoundTripsTotalOrders) {
  auto sys = ParseSystem(kBanking);
  ASSERT_TRUE(sys.ok());
  std::string text = SerializeSystem(*sys->system);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  ASSERT_EQ(again->system->num_transactions(),
            sys->system->num_transactions());
  for (int i = 0; i < sys->system->num_transactions(); ++i) {
    EXPECT_EQ(again->system->txn(i).DebugString(),
              sys->system->txn(i).DebugString());
  }
}

// ---------------------------------------------------------------------
// Replication stanzas.

constexpr char kReplicated[] = R"(
sites: backup
site s1: x
site s2: y
copies x: s1 backup
copies y: s2 backup s1
latency: 20 7 2
txn T: Lx Ly Ux Uy
)";

TEST(TextFormatTest, ParsesReplicationStanzas) {
  auto spec = ParseWorkload(kReplicated);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Database& db = *spec->owned.db;
  EXPECT_EQ(db.num_sites(), 3);
  EXPECT_TRUE(db.EntitiesAt(db.FindSite("backup")).empty());

  ASSERT_NE(spec->owned.placement, nullptr);
  const CopyPlacement& placement = *spec->owned.placement;
  EXPECT_TRUE(placement.IsReplicated());
  EXPECT_EQ(placement.DegreeOf(db.FindEntity("x")), 2);
  EXPECT_EQ(placement.DegreeOf(db.FindEntity("y")), 3);
  // The first listed site is the primary.
  EXPECT_EQ(placement.PrimaryOf(db.FindEntity("y")), db.FindSite("s2"));

  EXPECT_TRUE(spec->has_latency);
  EXPECT_EQ(spec->latency.base, 20u);
  EXPECT_EQ(spec->latency.jitter, 7u);
  EXPECT_EQ(spec->latency.local, 2u);
}

TEST(TextFormatTest, BareSiteLineCreatesTheSite) {
  auto sys = ParseSystem("site lonely:\nsite s: x\ntxn T: Lx Ux\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_NE(sys->db->FindSite("lonely"), kInvalidSite);
}

TEST(TextFormatTest, RejectsBadReplicationStanzas) {
  // Unknown entity / site.
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies z: s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies x: nope\ntxn T: Lx Ux\n").ok());
  // Duplicate copy site and duplicate stanza.
  EXPECT_FALSE(ParseWorkload("site s: x\ncopies x: s s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("sites: a\nsite s: x\ncopies x: s\ncopies x: a\n"
                             "txn T: Lx Ux\n")
                   .ok());
  // Malformed latency.
  EXPECT_FALSE(ParseWorkload("site s: x\nlatency: 1 2\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(
      ParseWorkload("site s: x\nlatency: a b c\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseWorkload("site s: x\nlatency: 1 2 3\nlatency: 1 2 3\n"
                             "txn T: Lx Ux\n")
                   .ok());
  // Duplicate site declarations across stanza kinds.
  EXPECT_FALSE(ParseWorkload("sites: s\nsites: s\ntxn T: Lx Ux\n").ok());
  EXPECT_FALSE(ParseSystem("site s: x\nsite s: y\n").ok());
}

// Every malformed stanza class must surface as a Status that names the
// failing line — no crash, no silent default. Table-driven so each new
// stanza kind picks up a negative case alongside its parser.
TEST(TextFormatTest, NegativeStanzasNameTheFailingLine) {
  struct Case {
    const char* label;
    const char* text;
    int line;
  };
  const Case kCases[] = {
      {"sites with no names", "site s: x\nsites:\ntxn T: Lx Ux\n", 2},
      {"site header missing colon", "site s x\ntxn T: Lx Ux\n", 1},
      {"site with empty name", "site :\ntxn T: Lx Ux\n", 1},
      {"duplicate entity at one site", "site s: x x\ntxn T: Lx Ux\n", 1},
      {"duplicate entity across sites",
       "site s: x\nsite t: x\ntxn T: Lx Ux\n", 2},
      {"duplicate site header", "site s: x\nsite s: y\ntxn T: Lx Ux\n", 2},
      {"copies missing colon", "site s: x\ncopies x s\ntxn T: Lx Ux\n", 2},
      {"copies with no sites", "site s: x\ncopies x:\ntxn T: Lx Ux\n", 2},
      {"copies with empty entity", "site s: x\ncopies :\ntxn T: Lx Ux\n",
       2},
      {"copies of unknown entity", "site s: x\ncopies z: s\ntxn T: Lx Ux\n",
       2},
      {"copies at out-of-range site",
       "site s: x\ncopies x: s9\ntxn T: Lx Ux\n", 2},
      {"copies repeating a site", "site s: x\ncopies x: s s\ntxn T: Lx Ux\n",
       2},
      {"duplicate copies stanza",
       "sites: a\nsite s: x\ncopies x: s\ncopies x: a\ntxn T: Lx Ux\n", 4},
      {"latency wrong arity", "site s: x\nlatency: 1 2\ntxn T: Lx Ux\n", 2},
      {"latency non-numeric", "site s: x\nlatency: a b c\ntxn T: Lx Ux\n",
       2},
      {"latency negative", "site s: x\nlatency: -1 0 0\ntxn T: Lx Ux\n", 2},
      {"latency overflow",
       "site s: x\nlatency: 99999999999999999999999 0 0\ntxn T: Lx Ux\n",
       2},
      {"duplicate latency stanza",
       "site s: x\nlatency: 1 2 3\nlatency: 1 2 3\ntxn T: Lx Ux\n", 3},
      {"txn header missing colon", "site s: x\ntxn T Lx Ux\n", 2},
      {"txn with empty name", "site s: x\ntxn : Lx Ux\n", 2},
      {"txn with no steps", "site s: x\ntxn T:\n", 2},
      {"bad step token", "site s: x\ntxn T: Qx\n", 2},
      {"bare L step token", "site s: x\ntxn T: L\n", 2},
      {"unknown directive", "site s: x\nfrobnicate: 1\ntxn T: Lx Ux\n", 2},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.label);
    auto parsed = ParseWorkload(c.text);
    ASSERT_FALSE(parsed.ok());
    const std::string want = "line " + std::to_string(c.line);
    EXPECT_NE(parsed.status().message().find(want), std::string::npos)
        << "got: " << parsed.status().ToString();
  }
}

TEST(TextFormatTest, ReplicatedRoundTripPreservesEverything) {
  auto spec = ParseWorkload(kReplicated);
  ASSERT_TRUE(spec.ok());
  std::string text =
      SerializeWorkload(*spec->owned.system, spec->owned.placement.get(),
                        &spec->latency);
  auto again = ParseWorkload(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;

  const Database& db = *spec->owned.db;
  const Database& db2 = *again->owned.db;
  EXPECT_EQ(db2.num_sites(), db.num_sites());
  ASSERT_NE(again->owned.placement, nullptr);
  for (EntityId e = 0; e < db.num_entities(); ++e) {
    EntityId e2 = db2.FindEntity(db.EntityName(e));
    ASSERT_NE(e2, kInvalidEntity);
    const auto& sites = spec->owned.placement->CopiesOf(e);
    const auto& sites2 = again->owned.placement->CopiesOf(e2);
    ASSERT_EQ(sites2.size(), sites.size());
    for (size_t k = 0; k < sites.size(); ++k) {
      EXPECT_EQ(db2.SiteName(sites2[k]), db.SiteName(sites[k]));
    }
  }
  EXPECT_TRUE(again->has_latency);
  EXPECT_EQ(again->latency.base, spec->latency.base);
  EXPECT_EQ(again->latency.jitter, spec->latency.jitter);
  EXPECT_EQ(again->latency.local, spec->latency.local);
}

// Property test: random systems with random placements and latency
// models survive parse -> print -> parse with all structure intact.
TEST(TextFormatTest, RandomReplicatedWorkloadsRoundTrip) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RandomSystemOptions gopts;
    gopts.num_sites = 3;
    gopts.entities_per_site = 2;
    gopts.num_transactions = 3;
    gopts.entities_per_txn = 3;
    gopts.seed = seed;
    auto sys = GenerateRandomSystem(gopts);
    ASSERT_TRUE(sys.ok());
    Rng rng(seed * 7919);
    ASSERT_TRUE(
        ReplicateRoundRobin(&*sys, 1 + static_cast<int>(rng.NextBelow(3)))
            .ok());
    LatencyModel latency;
    latency.base = 1 + rng.NextBelow(50);
    latency.jitter = rng.NextBelow(20);
    latency.local = 1 + rng.NextBelow(3);

    std::string text = SerializeWorkload(*sys->system, sys->placement.get(),
                                         &latency);
    auto again = ParseWorkload(text);
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;

    // Transactions round-trip (total orders exactly).
    ASSERT_EQ(again->owned.system->num_transactions(),
              sys->system->num_transactions());
    EXPECT_TRUE(again->has_latency);
    EXPECT_EQ(again->latency.base, latency.base);
    EXPECT_EQ(again->latency.jitter, latency.jitter);
    EXPECT_EQ(again->latency.local, latency.local);
    const Database& db = *sys->db;
    const Database& db2 = *again->owned.db;
    if (!sys->placement->IsReplicated()) {
      // A single-copy placement serializes to no `copies` lines and
      // round-trips to the equivalent null placement.
      EXPECT_EQ(again->owned.placement, nullptr);
      continue;
    }
    // Placement round-trips by name.
    ASSERT_NE(again->owned.placement, nullptr);
    for (EntityId e = 0; e < db.num_entities(); ++e) {
      EntityId e2 = db2.FindEntity(db.EntityName(e));
      ASSERT_NE(e2, kInvalidEntity);
      const auto& sites = sys->placement->CopiesOf(e);
      const auto& sites2 = again->owned.placement->CopiesOf(e2);
      ASSERT_EQ(sites2.size(), sites.size()) << "seed " << seed;
      for (size_t k = 0; k < sites.size(); ++k) {
        EXPECT_EQ(db2.SiteName(sites2[k]), db.SiteName(sites[k]));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Partial-order round-tripping (the lossy-linearization fix) and the
// `<i>-><j>` arc-token syntax.

// A transaction's Hasse arcs as step-label pairs; node ids may be
// renumbered across a round trip, but each entity is accessed once, so
// labels identify steps.
std::set<std::pair<std::string, std::string>> HasseArcLabels(
    const Transaction& t) {
  std::set<std::pair<std::string, std::string>> arcs;
  Digraph hasse = t.HasseDiagram();
  for (NodeId v = 0; v < hasse.num_nodes(); ++v) {
    for (NodeId w : hasse.OutNeighbors(v)) {
      arcs.emplace(t.StepLabel(v), t.StepLabel(w));
    }
  }
  return arcs;
}

TEST(TextFormatTest, TwoSegmentTxnRoundTripsTheExactPartialOrder) {
  // Regression for the lossy serializer: a two-segment transaction used
  // to come back totally ordered. The round trip must preserve the arc
  // set exactly.
  auto sys = ParseSystem(
      "site s1: x\n"
      "site s2: y\n"
      "txn T: Lx Ux ; Ly Uy\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  std::string text = SerializeSystem(*sys->system);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  EXPECT_EQ(HasseArcLabels(again->system->txn(0)),
            HasseArcLabels(sys->system->txn(0)))
      << text;
  // The reparse must keep Lx and Ly incomparable — the exact structure
  // the old serializer destroyed.
  const Transaction& t = again->system->txn(0);
  EXPECT_FALSE(t.Comparable(t.LockNode(again->db->FindEntity("x")),
                            t.LockNode(again->db->FindEntity("y"))));
}

TEST(TextFormatTest, ArcTokensBuildTheDiamond) {
  // La/Lb incomparable, both before both unlocks: segments give the two
  // chains, arc tokens (1-based step ordinals) add the cross arcs.
  auto sys = ParseSystem(
      "site s1: a\n"
      "site s2: b\n"
      "txn T: La Ua ; Lb Ub 3->2 1->4\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  const Transaction& t = sys->system->txn(0);
  const Database& db = *sys->db;
  NodeId la = t.LockNode(db.FindEntity("a"));
  NodeId lb = t.LockNode(db.FindEntity("b"));
  NodeId ua = t.UnlockNode(db.FindEntity("a"));
  NodeId ub = t.UnlockNode(db.FindEntity("b"));
  EXPECT_FALSE(t.Comparable(la, lb));
  EXPECT_FALSE(t.Comparable(ua, ub));
  EXPECT_TRUE(t.Precedes(la, ub));
  EXPECT_TRUE(t.Precedes(lb, ua));
}

TEST(TextFormatTest, DiamondRoundTripsWithIdenticalArcSet) {
  auto sys = ParseSystem(
      "site s1: a\n"
      "site s2: b\n"
      "txn T: La Ua ; Lb Ub 3->2 1->4\n");
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  std::string text = SerializeSystem(*sys->system);
  auto again = ParseSystem(text);
  ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << text;
  EXPECT_EQ(HasseArcLabels(again->system->txn(0)),
            HasseArcLabels(sys->system->txn(0)))
      << text;
}

TEST(TextFormatTest, RandomPartialOrdersRoundTripExactly) {
  // Random three-segment transactions (one per site) with random forward
  // cross-segment arcs: arcs from a lower to a higher step ordinal in a
  // different segment keep the order acyclic and the per-site chains
  // intact, so every generated text is a valid partial order.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 6151);
    std::string text =
        "site s1: a\nsite s2: b\nsite s3: c\ntxn T: La Ua ; Lb Ub ; Lc Uc";
    const auto segment_of = [](int ordinal) { return (ordinal - 1) / 2; };
    for (int from = 1; from <= 6; ++from) {
      for (int to = from + 1; to <= 6; ++to) {
        if (segment_of(from) == segment_of(to)) continue;
        if (rng.NextBelow(3) == 0) {
          text += " " + std::to_string(from) + "->" + std::to_string(to);
        }
      }
    }
    text += "\n";
    auto sys = ParseSystem(text);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString() << "\n" << text;
    std::string rendered = SerializeSystem(*sys->system);
    auto again = ParseSystem(rendered);
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << rendered;
    EXPECT_EQ(HasseArcLabels(again->system->txn(0)),
              HasseArcLabels(sys->system->txn(0)))
        << "seed " << seed << "\nsource:\n"
        << text << "rendered:\n"
        << rendered;
  }
}

TEST(TextFormatTest, PreFixLinearizationPinned) {
  // Pins what the lossy serializer used to do — and why it mattered.
  // T1 is the 2PL diamond (locks a and b in either order, unlocks only
  // after both); T2 locks a then b. The true system deadlocks (T1 grabs
  // b first, T2 grabs a), so the exact checker refutes it.
  const char* kTrue =
      "site s1: a\n"
      "site s2: b\n"
      "txn T1: La Ua ; Lb Ub 3->2 1->4\n"
      "txn T2: La Lb Ua Ub\n";
  auto sys = ParseSystem(kTrue);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  auto verdict = CheckSafeAndDeadlockFree(*sys->system);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_FALSE(verdict->holds);

  // The old serializer flattened T1 into one of its linear extensions.
  // Under the reading "La Lb Ua Ub", both transactions acquire a before
  // b and are 2PL — the flattened system is CERTIFIED. A round trip
  // through the old format silently turned a refuted system into a
  // certified one; that is the bug the arc tokens fix.
  const char* kLossy =
      "site s1: a\n"
      "site s2: b\n"
      "txn T1: La Lb Ua Ub\n"
      "txn T2: La Lb Ua Ub\n";
  auto lossy = ParseSystem(kLossy);
  ASSERT_TRUE(lossy.ok()) << lossy.status().ToString();
  auto lossy_verdict = CheckSafeAndDeadlockFree(*lossy->system);
  ASSERT_TRUE(lossy_verdict.ok()) << lossy_verdict.status().ToString();
  EXPECT_TRUE(lossy_verdict->holds);

  // And the old rendering really was lossy: joining SomeLinearExtension
  // labels (the pre-fix serializer) yields a totally ordered reparse,
  // while the true T1 keeps its incomparable pairs.
  const Transaction& t1 = sys->system->txn(0);
  std::string flat = "site s1: a\nsite s2: b\ntxn T1:";
  for (NodeId v : t1.SomeLinearExtension()) flat += " " + t1.StepLabel(v);
  flat += "\n";
  auto flat_sys = ParseSystem(flat);
  ASSERT_TRUE(flat_sys.ok()) << flat_sys.status().ToString();
  const Transaction& flat_t1 = flat_sys->system->txn(0);
  int incomparable_true = 0;
  int incomparable_flat = 0;
  for (NodeId u = 0; u < t1.num_steps(); ++u) {
    for (NodeId v = u + 1; v < t1.num_steps(); ++v) {
      incomparable_true += t1.Comparable(u, v) ? 0 : 1;
      incomparable_flat += flat_t1.Comparable(u, v) ? 0 : 1;
    }
  }
  EXPECT_GT(incomparable_true, 0);
  EXPECT_EQ(incomparable_flat, 0);
}

TEST(TextFormatTest, ArcTokenNegativeCases) {
  struct Case {
    const char* label;
    const char* text;
    const char* want;
  };
  const Case kCases[] = {
      {"malformed arc token", "site s: x\ntxn T: Lx Ux 1-2\n",
       "bad arc token"},
      {"arc missing target", "site s: x\ntxn T: Lx Ux 1->\n",
       "bad arc token"},
      {"arc with garbage target", "site s: x\ntxn T: Lx Ux 1->y\n",
       "bad arc token"},
      {"arc out of range", "site s: x\ntxn T: Lx Ux 1->3\n",
       "out of range"},
      {"arc from ordinal zero", "site s: x\ntxn T: Lx Ux 0->1\n",
       "out of range"},
      {"arc self-loop", "site s: x\ntxn T: Lx Ux 2->2\n", "self-loop"},
      {"arc creating a cycle", "site s: x\ntxn T: Lx Ux 2->1\n",
       "transaction 'T'"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.label);
    auto parsed = ParseSystem(c.text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
        << "got: " << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find(c.want), std::string::npos)
        << "got: " << parsed.status().ToString();
  }
}

// ---------------------------------------------------------------------
// Duplicate transaction names.

TEST(TextFormatTest, DuplicateTxnNamesRejectedNamingBothLines) {
  auto bad = ParseSystem(
      "site s: x y\n"
      "txn T: Lx Ux\n"
      "txn U: Ly Uy\n"
      "txn T: Ly Uy\n");
  ASSERT_FALSE(bad.ok());
  // The diagnostic names the duplicate's line AND the first definition.
  EXPECT_NE(bad.status().message().find("line 4"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("duplicate transaction 'T'"),
            std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
}

// ---------------------------------------------------------------------
// SimTime parsing at the 64-bit boundary.

TEST(TextFormatTest, LatencyParsesUpToExactly64Bits) {
  // 2^64 - 1 is representable...
  auto ok = ParseWorkload(
      "site s: x\nlatency: 18446744073709551615 0 1\ntxn T: Lx Ux\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->latency.base, 18446744073709551615ull);
  // ...2^64 is not. The old check accepted it and wrapped to 0: with
  // value == max/10 before the final digit, `value > max/10` was false
  // even though appending the digit overflows.
  auto over = ParseWorkload(
      "site s: x\nlatency: 18446744073709551616 0 1\ntxn T: Lx Ux\n");
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("line 2"), std::string::npos)
      << over.status().ToString();
}

}  // namespace
}  // namespace wydb
