// Tests for the Theorem 4 system-level test, cross-validated against the
// exact Lemma 1 oracle.
#include <gtest/gtest.h>

#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "core/conflict_graph.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TEST(MultiAnalyzerTest, FailingPairShortCircuits) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe_and_deadlock_free);
  ASSERT_TRUE(report->violation.has_value());
  ASSERT_TRUE(report->violation->failed_pair.has_value());
  EXPECT_EQ(*report->violation->failed_pair, (std::pair<int, int>{0, 1}));
}

TEST(MultiAnalyzerTest, AcyclicInteractionGraphPasses) {
  // T1-T2 share x, T2-T3 share z; no cycle, pairs pass => safe+DF.
  auto db = MakeDb({{"s1", {"x", "y"}}, {"s2", {"z", "w"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Uy", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Lz", "Uz", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T3", {"Lz", "Lw", "Uw", "Uz"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe_and_deadlock_free);
  EXPECT_EQ(report->cycles_checked, 0u);
}

TEST(MultiAnalyzerTest, ThreeRingFailsWithCycleWitness) {
  // The 3-ring: every pair shares exactly one entity (pairs pass Theorem
  // 3), but the cycle admits a circular-wait partial schedule.
  auto ring = GenerateRingSystem(3);
  ASSERT_TRUE(ring.ok());
  const TransactionSystem& sys = *ring->system;
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->safe_and_deadlock_free);
  ASSERT_TRUE(report->violation.has_value());
  EXPECT_FALSE(report->violation->failed_pair.has_value());
  EXPECT_EQ(report->violation->cycle.size(), 3u);

  // The normal-form witness S* must be a legal partial schedule whose
  // conflict digraph is cyclic (Lemma 1 violation).
  const Schedule& witness = report->violation->witness;
  ASSERT_FALSE(witness.empty());
  ASSERT_TRUE(ValidateSchedule(sys, witness, false).ok());
  auto cg = ConflictGraph::FromSchedule(sys, witness);
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(cg->IsAcyclic());
}

TEST(MultiAnalyzerTest, RingsOfAllSizesFail) {
  for (int k = 3; k <= 6; ++k) {
    auto ring = GenerateRingSystem(k);
    ASSERT_TRUE(ring.ok());
    auto report = CheckSystemSafeAndDeadlockFree(*ring->system);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->safe_and_deadlock_free) << "k=" << k;
    EXPECT_EQ(report->violation->cycle.size(), static_cast<size_t>(k));
  }
}

TEST(MultiAnalyzerTest, SafeGeneratorPasses) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SafeSystemOptions opts;
    opts.num_transactions = 4;
    opts.entities_per_txn = 3;
    opts.seed = seed;
    auto sys = GenerateSafeSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto report = CheckSystemSafeAndDeadlockFree(*sys->system);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->safe_and_deadlock_free) << "seed " << seed;
  }
}

TEST(MultiAnalyzerTest, CycleBudgetReported) {
  auto sys = GenerateChordedCycleSystem(6, 4, /*seed=*/1);
  ASSERT_TRUE(sys.ok());
  MultiCheckOptions opts;
  opts.max_cycles = 1;
  auto report = CheckSystemSafeAndDeadlockFree(*sys->system, opts);
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(MultiAnalyzerTest, SingleTransactionPasses) {
  auto db = MakeDb({{"s1", {"x"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckSystemSafeAndDeadlockFree(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->safe_and_deadlock_free);
}

// Ground truth: Theorem 4 verdicts match the exact Lemma 1 oracle on
// random systems of 3 transactions.
TEST(MultiAnalyzerProperty, AgreesWithExactOracle) {
  int fails = 0, passes = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());

    auto fast = CheckSystemSafeAndDeadlockFree(*sys->system);
    auto oracle = CheckSafeAndDeadlockFree(*sys->system);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
    (oracle->holds ? passes : fails)++;
  }
  EXPECT_GT(fails, 0);
  EXPECT_GT(passes, 0);
}

// Same, with two-phase-locked random systems (safe by [EGLT], so any
// failure is a pure deadlock failure — the regime the paper's §6 calls the
// practically relevant one).
TEST(MultiAnalyzerProperty, AgreesWithOracleOnTwoPhaseSystems) {
  for (uint64_t seed = 200; seed <= 240; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.two_phase = true;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto fast = CheckSystemSafeAndDeadlockFree(*sys->system);
    auto oracle = CheckSafeAndDeadlockFree(*sys->system);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace wydb
