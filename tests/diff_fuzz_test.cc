// Differential fuzz suite: on ~200 randomly generated systems per run,
// every layer of the stack must tell one consistent story —
//
//   * the three search engines (naive reference, incremental, parallel
//     sharded at >1 thread) agree on the exact deadlock verdict, witness,
//     and states_visited, in both detection modes;
//   * a deadlock witness actually replays: its schedule is legal from the
//     empty state and ends in a stuck, incomplete state;
//   * the traffic engine agrees with the static verdict: a system the
//     exact checker certifies deadlock-free never deadlocks under the
//     pure blocking policy, and conversely any observed traffic deadlock
//     implies the checker refuted deadlock-freedom.
//
// Seeding is deterministic (kBaseSeed + case index) so a run is
// reproducible; every failure message carries the case seed, and
// WYDB_DIFF_FUZZ_SEED=<seed> replays exactly that one case:
//
//   WYDB_DIFF_FUZZ_SEED=12345 ./diff_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "core/state_space.h"
#include "gen/system_gen.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

constexpr uint64_t kBaseSeed = 0x5EED0FF1CE5EED01ULL;
constexpr int kCases = 200;

/// The seed override, or 0 when unset (seeds here are never 0).
uint64_t SeedOverride() {
  const char* env = std::getenv("WYDB_DIFF_FUZZ_SEED");
  if (env == nullptr) return 0;
  return std::strtoull(env, nullptr, 10);
}

/// Shapes are drawn from the seed too, so the corpus covers site/txn/
/// entity mixes without a hand-kept table.
RandomSystemOptions ShapeFor(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  RandomSystemOptions opts;
  opts.num_sites = 1 + static_cast<int>(rng.NextBelow(3));
  opts.entities_per_site = 2 + static_cast<int>(rng.NextBelow(2));
  opts.num_transactions = 2 + static_cast<int>(rng.NextBelow(3));
  opts.entities_per_txn = 2 + static_cast<int>(rng.NextBelow(2));
  opts.two_phase = rng.NextBelow(2) == 1;
  opts.seed = seed;
  return opts;
}

/// Replays a kStuckState witness: the schedule must be legal move by move
/// from the empty state and end stuck (no legal move) and incomplete.
void CheckWitnessReplays(const TransactionSystem& sys,
                         const DeadlockWitness& witness) {
  StateSpace space(&sys);
  ExecState s = space.EmptyState();
  for (GlobalNode g : witness.schedule) {
    ASSERT_TRUE(space.IsLegal(s, g))
        << "witness schedule has an illegal move";
    s = space.Apply(s, g);
  }
  EXPECT_TRUE(space.LegalMoves(s).empty())
      << "witness end state is not stuck";
  EXPECT_FALSE(space.IsComplete(s)) << "witness end state is complete";
}

void RunCase(uint64_t seed) {
  SCOPED_TRACE(testing::Message()
               << "replay: WYDB_DIFF_FUZZ_SEED=" << seed
               << " ./diff_fuzz_test");
  auto sys = GenerateRandomSystem(ShapeFor(seed));
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;

  // --- Engine agreement: verdict, witness, states_visited. -------------
  Result<DeadlockReport> stuck_report = Status::Internal("unset");
  for (auto mode : {DeadlockDetectionMode::kStuckState,
                    DeadlockDetectionMode::kReductionGraph}) {
    DeadlockCheckOptions ref;
    ref.mode = mode;
    ref.engine = SearchEngine::kNaiveReference;
    auto b = CheckDeadlockFreedom(s, ref);
    ASSERT_TRUE(b.ok());
    for (auto [engine, threads] :
         std::vector<std::pair<SearchEngine, int>>{
             {SearchEngine::kIncremental, 0},
             {SearchEngine::kParallelSharded, 2},
             {SearchEngine::kParallelSharded, 3}}) {
      DeadlockCheckOptions opts = ref;
      opts.engine = engine;
      opts.search_threads = threads;
      auto a = CheckDeadlockFreedom(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->deadlock_free, b->deadlock_free);
      ASSERT_EQ(a->states_visited, b->states_visited);
      ASSERT_EQ(a->witness.has_value(), b->witness.has_value());
      if (a->witness.has_value()) {
        ASSERT_EQ(a->witness->schedule, b->witness->schedule);
        ASSERT_EQ(a->witness->prefix_nodes, b->witness->prefix_nodes);
        ASSERT_EQ(a->witness->reduction_cycle, b->witness->reduction_cycle);
      }
    }
    if (mode == DeadlockDetectionMode::kStuckState) {
      stuck_report = std::move(b);
    }
  }
  ASSERT_TRUE(stuck_report.ok());

  // Both detection modes decide the same predicate.
  {
    DeadlockCheckOptions rg;
    rg.mode = DeadlockDetectionMode::kReductionGraph;
    auto b = CheckDeadlockFreedom(s, rg);
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(b->deadlock_free, stuck_report->deadlock_free);
  }

  // --- Witness replay (adversarial: don't trust the search's own word).
  if (stuck_report->witness.has_value()) {
    CheckWitnessReplays(s, *stuck_report->witness);
  }

  // --- Safety engines agree too. ---------------------------------------
  {
    SafetyCheckOptions ref;
    ref.engine = SearchEngine::kNaiveReference;
    auto b = CheckSafeAndDeadlockFree(s, ref);
    ASSERT_TRUE(b.ok());
    for (auto engine :
         {SearchEngine::kIncremental, SearchEngine::kParallelSharded}) {
      SafetyCheckOptions opts;
      opts.engine = engine;
      opts.search_threads = 2;
      auto a = CheckSafeAndDeadlockFree(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->holds, b->holds);
      ASSERT_EQ(a->states_visited, b->states_visited);
    }
  }

  // --- Traffic consistency under pure blocking. -------------------------
  // Deadlock-free verdict => no run may end deadlocked; an observed
  // deadlock => the verdict must have been "can deadlock". (A refuted
  // system is *allowed* to commit every run — adverse timing is not
  // guaranteed by any fixed seed set.)
  SimOptions sopts;
  sopts.policy = ConflictPolicy::kBlock;
  sopts.seed = seed * 1000 + 1;
  auto agg = RunMany(s, sopts, /*runs=*/8, /*threads=*/1);
  ASSERT_TRUE(agg.ok());
  if (stuck_report->deadlock_free) {
    EXPECT_EQ(agg->deadlocked_runs, 0)
        << "traffic deadlocked on a certified deadlock-free system";
  }
  if (agg->deadlocked_runs > 0) {
    EXPECT_FALSE(stuck_report->deadlock_free)
        << "exact checker certified a system the traffic engine "
           "deadlocked";
  }
}

TEST(DiffFuzzTest, EnginesAndTrafficAgreeOnRandomSystems) {
  const uint64_t override_seed = SeedOverride();
  if (override_seed != 0) {
    RunCase(override_seed);
    return;
  }
  for (int i = 0; i < kCases; ++i) {
    RunCase(kBaseSeed + static_cast<uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace wydb
