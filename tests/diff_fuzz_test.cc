// Differential fuzz suite: on ~200 randomly generated systems per run,
// every layer of the stack must tell one consistent story —
//
//   * the three exhaustive search engines (naive reference, incremental,
//     parallel sharded at >1 thread) agree on the exact deadlock verdict,
//     witness, and states_visited, in both detection modes;
//   * the reduced engine (kReduced, serial and 4-thread) agrees on every
//     verdict — deadlock in both detection modes, safe+DF, and pure
//     safety — and is deterministic across thread counts; its state
//     counts are *not* compared (it explores a reduced space);
//   * every witness actually replays: a stuck-state witness is legal from
//     the empty state and ends stuck and incomplete; a reduction-graph
//     witness ends in a cyclic-reduction-graph prefix; a safety violation
//     rebuilds a cyclic conflict digraph D(S') containing the reported
//     transaction cycle (and is complete for the pure-safety checker);
//   * the traffic engine agrees with the static verdict: a system the
//     exact checker certifies deadlock-free never deadlocks under the
//     pure blocking policy, and conversely any observed traffic deadlock
//     implies the checker refuted deadlock-freedom;
//   * on every 8th certified deadlock-free case, the live engine (real
//     threads, pure blocking, no detection machinery) commits every
//     round without deadlocking or aborting, and the simulator's
//     rounds-bounded session reproduces its exact commit/abort counts.
//
// Seeding is deterministic (kBaseSeed + case index) so a run is
// reproducible; every failure message carries the case seed, and
// WYDB_DIFF_FUZZ_SEED=<seed> replays exactly that one case:
//
//   WYDB_DIFF_FUZZ_SEED=12345 ./diff_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "core/reduction_graph.h"
#include "core/state_space.h"
#include "gen/system_gen.h"
#include "runtime/live_engine.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

constexpr uint64_t kBaseSeed = 0x5EED0FF1CE5EED01ULL;
constexpr int kCases = 200;

/// The seed override, or 0 when unset (seeds here are never 0).
uint64_t SeedOverride() {
  const char* env = std::getenv("WYDB_DIFF_FUZZ_SEED");
  if (env == nullptr) return 0;
  return std::strtoull(env, nullptr, 10);
}

/// Shapes are drawn from the seed too, so the corpus covers site/txn/
/// entity mixes without a hand-kept table.
RandomSystemOptions ShapeFor(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  RandomSystemOptions opts;
  opts.num_sites = 1 + static_cast<int>(rng.NextBelow(3));
  opts.entities_per_site = 2 + static_cast<int>(rng.NextBelow(2));
  opts.num_transactions = 2 + static_cast<int>(rng.NextBelow(3));
  opts.entities_per_txn = 2 + static_cast<int>(rng.NextBelow(2));
  opts.two_phase = rng.NextBelow(2) == 1;
  opts.seed = seed;
  return opts;
}

/// Replays a kStuckState witness: the schedule must be legal move by move
/// from the empty state and end stuck (no legal move) and incomplete.
void CheckWitnessReplays(const TransactionSystem& sys,
                         const DeadlockWitness& witness) {
  StateSpace space(&sys);
  ExecState s = space.EmptyState();
  for (GlobalNode g : witness.schedule) {
    ASSERT_TRUE(space.IsLegal(s, g))
        << "witness schedule has an illegal move";
    s = space.Apply(s, g);
  }
  EXPECT_TRUE(space.LegalMoves(s).empty())
      << "witness end state is not stuck";
  EXPECT_FALSE(space.IsComplete(s)) << "witness end state is complete";
}

/// Replays a kReductionGraph witness: legal from the empty state, ending
/// in a prefix whose reduction graph is cyclic.
void CheckCyclicPrefixWitnessReplays(const TransactionSystem& sys,
                                     const DeadlockWitness& witness) {
  StateSpace space(&sys);
  ExecState s = space.EmptyState();
  for (GlobalNode g : witness.schedule) {
    ASSERT_TRUE(space.IsLegal(s, g))
        << "RG witness schedule has an illegal move";
    s = space.Apply(s, g);
  }
  ReductionGraph rg(space.ToPrefixSet(s));
  EXPECT_TRUE(rg.HasCycle())
      << "RG witness prefix has an acyclic reduction graph";
  EXPECT_FALSE(witness.reduction_cycle.empty());
}

/// Replays a safety violation: legal from the empty state, rebuilding the
/// §5 conflict digraph D(S') along the way; the reported transaction
/// cycle must be edge-for-edge present in the rebuilt digraph. With
/// `must_complete` the schedule must also execute every step.
void CheckSafetyViolationReplays(const TransactionSystem& sys,
                                 const SafetyViolation& violation,
                                 bool must_complete) {
  StateSpace space(&sys);
  const int n = sys.num_transactions();
  ExecState s = space.EmptyState();
  std::vector<std::vector<bool>> arc(n, std::vector<bool>(n, false));
  for (GlobalNode g : violation.schedule) {
    ASSERT_TRUE(space.IsLegal(s, g))
        << "violation schedule has an illegal move";
    const Step& st = sys.txn(g.txn).step(g.node);
    if (st.kind == StepKind::kLock) {
      for (int j : sys.AccessorsOf(st.entity)) {
        if (j == g.txn) continue;
        // §5 conflict digraph under modes: an S-S access pair draws no arc.
        if (!sys.txn(j).ConflictsOn(st.entity, st.mode)) continue;
        if (space.IsExecuted(s, j, sys.txn(j).LockNode(st.entity))) {
          arc[j][g.txn] = true;
        } else {
          arc[g.txn][j] = true;
        }
      }
    }
    s = space.Apply(s, g);
  }
  if (must_complete) {
    EXPECT_TRUE(space.IsComplete(s))
        << "pure-safety violation schedule is not complete";
  }
  ASSERT_FALSE(violation.txn_cycle.empty());
  for (size_t i = 0; i < violation.txn_cycle.size(); ++i) {
    const int a = violation.txn_cycle[i];
    const int b = violation.txn_cycle[(i + 1) % violation.txn_cycle.size()];
    EXPECT_TRUE(arc[a][b])
        << "reported D(S') cycle edge T" << a << "->T" << b
        << " is missing from the replayed digraph";
  }
}

void RunCaseWithShape(uint64_t seed, const RandomSystemOptions& shape) {
  SCOPED_TRACE(testing::Message()
               << "replay: WYDB_DIFF_FUZZ_SEED=" << seed
               << " ./diff_fuzz_test"
               << (shape.shared_fraction > 0.0 ? " (mixed S/X leg)" : ""));
  auto sys = GenerateRandomSystem(shape);
  ASSERT_TRUE(sys.ok());
  const TransactionSystem& s = *sys->system;

  // --- Engine agreement: verdict, witness, states_visited. -------------
  Result<DeadlockReport> stuck_report = Status::Internal("unset");
  for (auto mode : {DeadlockDetectionMode::kStuckState,
                    DeadlockDetectionMode::kReductionGraph}) {
    DeadlockCheckOptions ref;
    ref.mode = mode;
    ref.engine = SearchEngine::kNaiveReference;
    auto b = CheckDeadlockFreedom(s, ref);
    ASSERT_TRUE(b.ok());
    // The last config reruns the parallel engine over the delta-encoded
    // store (DESIGN.md §9.1): reconstruction through the decode cache
    // must leave every verdict, witness, and count bit-identical.
    struct EngineConfig {
      SearchEngine engine;
      int threads;
      StoreOptions::KeyEncoding encoding;
    };
    for (auto [engine, threads, encoding] : std::vector<EngineConfig>{
             {SearchEngine::kIncremental, 0,
              StoreOptions::KeyEncoding::kPlain},
             {SearchEngine::kParallelSharded, 2,
              StoreOptions::KeyEncoding::kPlain},
             {SearchEngine::kParallelSharded, 3,
              StoreOptions::KeyEncoding::kPlain},
             {SearchEngine::kParallelSharded, 2,
              StoreOptions::KeyEncoding::kDelta}}) {
      DeadlockCheckOptions opts = ref;
      opts.engine = engine;
      opts.search_threads = threads;
      opts.store.encoding = encoding;
      auto a = CheckDeadlockFreedom(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->deadlock_free, b->deadlock_free);
      ASSERT_EQ(a->states_visited, b->states_visited);
      ASSERT_EQ(a->witness.has_value(), b->witness.has_value());
      if (a->witness.has_value()) {
        ASSERT_EQ(a->witness->schedule, b->witness->schedule);
        ASSERT_EQ(a->witness->prefix_nodes, b->witness->prefix_nodes);
        ASSERT_EQ(a->witness->reduction_cycle, b->witness->reduction_cycle);
      }
    }
    if (mode == DeadlockDetectionMode::kStuckState) {
      stuck_report = std::move(b);
    }
  }
  ASSERT_TRUE(stuck_report.ok());

  // Both detection modes decide the same predicate.
  {
    DeadlockCheckOptions rg;
    rg.mode = DeadlockDetectionMode::kReductionGraph;
    auto b = CheckDeadlockFreedom(s, rg);
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(b->deadlock_free, stuck_report->deadlock_free);
  }

  // --- Witness replay (adversarial: don't trust the search's own word).
  if (stuck_report->witness.has_value()) {
    CheckWitnessReplays(s, *stuck_report->witness);
  }

  // --- Reduced engine: verdict agreement, witness replay, and serial /
  //     4-thread determinism. states_visited is only compared between
  //     reduced runs — the engine explores the reduced space.
  for (auto mode : {DeadlockDetectionMode::kStuckState,
                    DeadlockDetectionMode::kReductionGraph}) {
    Result<DeadlockReport> serial = Status::Internal("unset");
    for (int threads : {1, 4}) {
      DeadlockCheckOptions opts;
      opts.mode = mode;
      opts.engine = SearchEngine::kReduced;
      opts.search_threads = threads;
      // The 4-thread leg also runs delta-encoded: canonical-key deltas
      // must not perturb the reduced search either.
      if (threads == 4) {
        opts.store.encoding = StoreOptions::KeyEncoding::kDelta;
      }
      auto a = CheckDeadlockFreedom(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->deadlock_free, stuck_report->deadlock_free)
          << "kReduced verdict diverges from the reference";
      ASSERT_EQ(a->witness.has_value(), !stuck_report->deadlock_free);
      if (a->witness.has_value()) {
        if (mode == DeadlockDetectionMode::kStuckState) {
          CheckWitnessReplays(s, *a->witness);
        } else {
          CheckCyclicPrefixWitnessReplays(s, *a->witness);
        }
      }
      if (threads == 1) {
        serial = std::move(a);
      } else {
        ASSERT_TRUE(serial.ok());
        ASSERT_EQ(a->states_visited, serial->states_visited)
            << "kReduced is not deterministic across thread counts";
        if (a->witness.has_value()) {
          ASSERT_EQ(a->witness->schedule, serial->witness->schedule);
        }
      }
    }
  }

  // --- Safety engines agree too. ---------------------------------------
  {
    SafetyCheckOptions ref;
    ref.engine = SearchEngine::kNaiveReference;
    auto b = CheckSafeAndDeadlockFree(s, ref);
    ASSERT_TRUE(b.ok());
    for (auto engine :
         {SearchEngine::kIncremental, SearchEngine::kParallelSharded}) {
      SafetyCheckOptions opts;
      opts.engine = engine;
      opts.search_threads = 2;
      auto a = CheckSafeAndDeadlockFree(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->holds, b->holds);
      ASSERT_EQ(a->states_visited, b->states_visited);
    }

    // kReduced: verdicts for both Lemma 1 properties, with violation
    // replay (the reconstructed schedule must rebuild a cyclic D(S')).
    auto safe_ref = CheckSafety(s, ref);
    ASSERT_TRUE(safe_ref.ok());
    for (int threads : {1, 4}) {
      SafetyCheckOptions opts;
      opts.engine = SearchEngine::kReduced;
      opts.search_threads = threads;
      auto a = CheckSafeAndDeadlockFree(s, opts);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->holds, b->holds)
          << "kReduced safe+DF verdict diverges from the reference";
      if (a->violation.has_value()) {
        CheckSafetyViolationReplays(s, *a->violation,
                                    /*must_complete=*/false);
      }
      auto p = CheckSafety(s, opts);
      ASSERT_TRUE(p.ok());
      ASSERT_EQ(p->holds, safe_ref->holds)
          << "kReduced pure-safety verdict diverges from the reference";
      if (p->violation.has_value()) {
        CheckSafetyViolationReplays(s, *p->violation,
                                    /*must_complete=*/true);
      }
    }
  }

  // --- Traffic consistency under pure blocking. -------------------------
  // Deadlock-free verdict => no run may end deadlocked; an observed
  // deadlock => the verdict must have been "can deadlock". (A refuted
  // system is *allowed* to commit every run — adverse timing is not
  // guaranteed by any fixed seed set.)
  SimOptions sopts;
  sopts.policy = ConflictPolicy::kBlock;
  sopts.seed = seed * 1000 + 1;
  auto agg = RunMany(s, sopts, /*runs=*/8, /*threads=*/1);
  ASSERT_TRUE(agg.ok());
  if (stuck_report->deadlock_free) {
    EXPECT_EQ(agg->deadlocked_runs, 0)
        << "traffic deadlocked on a certified deadlock-free system";
  }
  if (agg->deadlocked_runs > 0) {
    EXPECT_FALSE(stuck_report->deadlock_free)
        << "exact checker certified a system the traffic engine "
           "deadlocked";
  }

  // --- Live-engine consistency (every 8th case: real threads cost real
  // wall time). An exactly certified deadlock-free system must survive
  // the wall-clock blocking fast path on one thread per transaction —
  // no deadlock, no abort, every round committed — and the simulator's
  // rounds-bounded session must agree on the exact counts.
  if (stuck_report->deadlock_free && seed % 8 == 0) {
    LiveOptions live;
    live.policy = ConflictPolicy::kBlock;
    live.seed = seed;
    live.threads = s.num_transactions();
    live.rounds = 3;
    auto lr = RunLive(s, live);
    ASSERT_TRUE(lr.ok());
    EXPECT_FALSE(lr->deadlocked)
        << "live engine deadlocked on a certified deadlock-free system";
    EXPECT_TRUE(lr->completed);
    EXPECT_EQ(lr->aborts, 0u);
    EXPECT_EQ(lr->commits,
              static_cast<uint64_t>(s.num_transactions()) * 3u);

    WorkloadOptions wl;
    wl.sim.policy = ConflictPolicy::kBlock;
    wl.sim.seed = seed;
    wl.duration = 0;
    wl.rounds = 3;
    auto sr = RunWorkload(s, wl);
    ASSERT_TRUE(sr.ok());
    EXPECT_EQ(sr->commits, lr->commits)
        << "live and simulated commit counts diverge";
    EXPECT_EQ(sr->aborts, lr->aborts);
  }
}

void RunCase(uint64_t seed) { RunCaseWithShape(seed, ShapeFor(seed)); }

TEST(DiffFuzzTest, EnginesAndTrafficAgreeOnRandomSystems) {
  const uint64_t override_seed = SeedOverride();
  if (override_seed != 0) {
    RunCase(override_seed);
    return;
  }
  for (int i = 0; i < kCases; ++i) {
    RunCase(kBaseSeed + static_cast<uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// The same battery over MIXED S/X systems: a fraction of each corpus
// system's accesses is shared (drawn from the seed, 20-70%), so the
// engine-agreement, witness-replay, reduced-determinism, and traffic /
// live consistency checks all exercise the mode-aware conflict rules.
// Replay with WYDB_DIFF_FUZZ_SEED picks the X-only corpus; the mixed leg
// reuses the same per-case machinery with `mixed` shapes, so a mixed
// failure replays by its printed seed through RunMixedCase below.
void RunMixedCase(uint64_t seed) {
  RandomSystemOptions opts = ShapeFor(seed);
  Rng rng(seed ^ 0x5A5A5A5A5A5A5A5AULL);
  opts.shared_fraction = 0.2 + 0.1 * static_cast<double>(rng.NextBelow(6));
  RunCaseWithShape(seed, opts);
}

TEST(DiffFuzzTest, MixedModeEnginesAndTrafficAgree) {
  if (SeedOverride() != 0) return;  // Override replays the X-only leg.
  for (int i = 0; i < kCases / 2; ++i) {
    RunMixedCase(kBaseSeed ^ (0xABCD0000ULL + static_cast<uint64_t>(i)));
    if (HasFatalFailure()) return;
  }
}

// S-heavy workloads genuinely shrink the reduced search: on the
// certified read-mostly farm every read-set move is always-invisible
// (the read entities are S-by-all), so kReduced interns strictly fewer
// states and prunes strictly more expansions than on the all-X demotion
// of the SAME system, where the read set becomes a contended lock chain.
TEST(DiffFuzzTest, SharedModesShrinkTheReducedSearch) {
  for (int workers : {2, 3}) {
    ReadMostlyFarmOptions fopts;
    fopts.workers = workers;
    fopts.read_entities = 3;
    auto farm = GenerateReadMostlyFarm(fopts);
    ASSERT_TRUE(farm.ok());
    const TransactionSystem& s = *farm->system;
    TransactionSystem demoted = testutil::DemoteToX(s);

    SafetyCheckOptions opts;
    opts.engine = SearchEngine::kReduced;
    opts.search_threads = 1;
    auto shared_run = CheckSafeAndDeadlockFree(s, opts);
    auto demoted_run = CheckSafeAndDeadlockFree(demoted, opts);
    ASSERT_TRUE(shared_run.ok());
    ASSERT_TRUE(demoted_run.ok());
    // Both certified (the latch dominates either way)...
    EXPECT_TRUE(shared_run->holds) << "workers=" << workers;
    EXPECT_TRUE(demoted_run->holds) << "workers=" << workers;
    // ...but the shared run explores a strictly smaller space.
    EXPECT_LT(shared_run->states_interned, demoted_run->states_interned)
        << "workers=" << workers;
    EXPECT_LT(shared_run->states_visited, demoted_run->states_visited)
        << "workers=" << workers;
    EXPECT_GT(shared_run->sleep_set_pruned, 0u) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace wydb
