// Tests for Corollary 3 / Theorem 5: systems of identical copies.
#include <gtest/gtest.h>

#include "analysis/copies_analyzer.h"
#include "analysis/deadlock_checker.h"
#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;

TEST(CopiesTest, DominatingAndCoveredPasses) {
  // Lx first and held to the end: x dominates and covers y and z.
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  Transaction t =
      MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"});
  CopiesVerdict v = CheckTwoCopies(t);
  EXPECT_TRUE(v.safe_and_deadlock_free);
  EXPECT_EQ(v.first_entity, db->FindEntity("x"));
}

TEST(CopiesTest, NoDominatingEntityFails) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  Transaction t = *b.Build();  // Lx and Ly incomparable.
  CopiesVerdict v = CheckTwoCopies(t);
  EXPECT_FALSE(v.safe_and_deadlock_free);
  EXPECT_EQ(v.first_entity, kInvalidEntity);
}

TEST(CopiesTest, UncoveredEntityFails) {
  // x first but released before Ly: y uncovered.
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ux", "Ly", "Uy"});
  CopiesVerdict v = CheckTwoCopies(t);
  EXPECT_FALSE(v.safe_and_deadlock_free);
  EXPECT_EQ(v.offending_entity, db->FindEntity("y"));
}

TEST(CopiesTest, SingleEntityTrivial) {
  auto db = MakeDb({{"s1", {"x"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ux"});
  EXPECT_TRUE(CheckTwoCopies(t).safe_and_deadlock_free);
}

TEST(CopiesTest, FewerThanTwoCopiesTrivial) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ux", "Ly", "Uy"});
  EXPECT_TRUE(CheckCopies(t, 1).safe_and_deadlock_free);
  // But two copies fail (y uncovered).
  EXPECT_FALSE(CheckCopies(t, 2).safe_and_deadlock_free);
}

TEST(CopiesTest, MakeCopiesBuildsSystem) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t = MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  auto sys = MakeCopies(t, 3);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys->num_transactions(), 3);
  EXPECT_EQ(sys->txn(0).name(), "T#1");
  EXPECT_EQ(sys->txn(2).num_steps(), t.num_steps());
  EXPECT_FALSE(MakeCopies(t, 0).ok());
}

// Corollary 3 verdicts agree with the exact checker on 2 copies, and by
// Theorem 5 with d = 3 and 4 copies as well.
TEST(CopiesProperty, AgreesWithExactCheckerAcrossCopyCounts) {
  auto db = MakeDb({{"s1", {"x", "y"}}, {"s2", {"z"}}});
  std::vector<std::vector<std::string>> shapes = {
      {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"},  // Covered: passes.
      {"Lx", "Ux", "Ly", "Uy"},              // y uncovered.
      {"Lx", "Ly", "Ux", "Uy"},              // y covered by x? Ux after Ly.
      {"Ly", "Lx", "Uy", "Ux"},
      {"Lz", "Lx", "Ly", "Uy", "Ux", "Uz"},
  };
  for (size_t i = 0; i < shapes.size(); ++i) {
    Transaction t = MakeSeq(db.get(), "T", shapes[i]);
    CopiesVerdict fast = CheckTwoCopies(t);
    for (int d = 2; d <= 4; ++d) {
      auto sys = MakeCopies(t, d);
      ASSERT_TRUE(sys.ok());
      auto oracle = CheckSafeAndDeadlockFree(*sys);
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ(fast.safe_and_deadlock_free, oracle->holds)
          << "shape " << i << " d=" << d;
    }
  }
}

// Theorem 5 consistency with the Theorem 4 system test.
TEST(CopiesProperty, AgreesWithMultiAnalyzer) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  std::vector<std::vector<std::string>> shapes = {
      {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"},
      {"Lx", "Ux", "Ly", "Uy"},
      {"Lx", "Ly", "Lz", "Uz", "Uy", "Ux"},
  };
  for (const auto& shape : shapes) {
    Transaction t = MakeSeq(db.get(), "T", shape);
    CopiesVerdict fast = CheckCopies(t, 5);
    auto sys = MakeCopies(t, 5);
    ASSERT_TRUE(sys.ok());
    auto multi = CheckSystemSafeAndDeadlockFree(*sys);
    ASSERT_TRUE(multi.ok());
    EXPECT_EQ(fast.safe_and_deadlock_free, multi->safe_and_deadlock_free);
  }
}

// The Figure 6 phenomenon: deadlock-freedom alone does NOT lift from 2
// copies to 3. The cyclic-cover transaction (arcs Le_i -> Ue_{i+1}) is
// deadlock-free in 2 copies yet deadlocks with 3.
Transaction CyclicCoverTransaction(const Database* db) {
  TransactionBuilder b(db, "T");
  b.set_auto_site_chain(false);
  int lx = b.Lock("x"), ly = b.Lock("y"), lz = b.Lock("z");
  int ux = b.Unlock("x"), uy = b.Unlock("y"), uz = b.Unlock("z");
  b.Arc(lx, uy).Arc(ly, uz).Arc(lz, ux);
  auto t = b.Build();
  if (!t.ok()) std::abort();
  return std::move(*t);
}

TEST(CopiesTest, Figure6TwoCopiesDeadlockFreeThreeCopiesDeadlock) {
  auto db = testutil::MakeSpreadDb({"x", "y", "z"});
  Transaction t = CyclicCoverTransaction(db.get());

  auto two = MakeCopies(t, 2);
  ASSERT_TRUE(two.ok());
  auto df2 = CheckDeadlockFreedom(*two);
  ASSERT_TRUE(df2.ok());
  EXPECT_TRUE(df2->deadlock_free);

  auto three = MakeCopies(t, 3);
  ASSERT_TRUE(three.ok());
  auto df3 = CheckDeadlockFreedom(*three);
  ASSERT_TRUE(df3.ok());
  EXPECT_FALSE(df3->deadlock_free);

  // Meanwhile safety+DF (which Theorem 5 says DOES lift) fails already at
  // two copies — no dominating entity — keeping the theorem consistent.
  EXPECT_FALSE(CheckTwoCopies(t).safe_and_deadlock_free);
  auto oracle2 = CheckSafeAndDeadlockFree(*two);
  ASSERT_TRUE(oracle2.ok());
  EXPECT_FALSE(oracle2->holds);
}

}  // namespace
}  // namespace wydb
