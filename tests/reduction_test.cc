// Tests for the Theorem 2 reduction (experiments F4/F5, E2): 3SAT'
// formula satisfiable <=> the reduced pair {T1, T2} has a deadlock.
//
// The completeness direction (satisfiable => deadlock prefix) is verified
// end-to-end on every instance: the witness prefix must admit a schedule
// and have a cyclic reduction graph. The soundness direction is coNP (the
// whole point of the theorem), so it is validated (a) by decoding cycles
// back to assignments and (b) probabilistically: random executions of the
// reduced pair of an UNSAT formula never reach a cyclic reduction graph.
#include <gtest/gtest.h>

#include "analysis/sat/dpll.h"
#include "analysis/sat/reduction.h"
#include "core/reduction_graph.h"
#include "core/schedule.h"
#include "core/state_space.h"

namespace wydb {
namespace {

Literal Pos(int v) { return Literal{v, true}; }
Literal Neg(int v) { return Literal{v, false}; }

// The paper's Figure 5 example: (x0 + x1)(x0 + !x1)(!x0 + x1).
CnfFormula Figure5Formula() {
  return CnfFormula(2,
                    {{Pos(0), Pos(1)}, {Pos(0), Neg(1)}, {Neg(0), Pos(1)}});
}

TEST(ReductionTest, StructureOfTheReducedPair) {
  auto red = SatReduction::FromFormula(Figure5Formula());
  ASSERT_TRUE(red.ok());
  const TransactionSystem& sys = red->system();
  ASSERT_EQ(sys.num_transactions(), 2);
  // Entities: 2 per clause + 3 per variable; both transactions access all
  // of them, with one Lock and one Unlock each => 2 * (2r + 3n) steps.
  int entities = 2 * 3 + 3 * 2;
  EXPECT_EQ(red->db().num_entities(), entities);
  EXPECT_EQ(sys.txn(0).num_steps(), 2 * entities);
  EXPECT_EQ(sys.txn(1).num_steps(), 2 * entities);
  // Every entity sits at its own site (distributed hardness needs it).
  EXPECT_EQ(red->db().num_sites(), entities);
}

TEST(ReductionTest, RejectsNonThreeSatPrime) {
  CnfFormula not_prime(1, {{Pos(0)}});
  EXPECT_FALSE(SatReduction::FromFormula(not_prime).ok());
}

TEST(ReductionTest, Figure5WitnessIsADeadlockPrefix) {
  CnfFormula f = Figure5Formula();
  auto red = SatReduction::FromFormula(f);
  ASSERT_TRUE(red.ok());
  auto sat = SolveDpll(f);
  ASSERT_TRUE(sat.ok());
  ASSERT_TRUE(sat->satisfiable);

  auto prefix = red->WitnessPrefix(sat->assignment);
  ASSERT_TRUE(prefix.ok());

  // (2) of the deadlock-prefix definition: cyclic reduction graph.
  ReductionGraph rg(*prefix);
  EXPECT_TRUE(rg.HasCycle());

  // (1): the prefix admits a schedule. It consists of Lock steps on
  // disjoint entity sets, so *any* interleaving works; verify one.
  Schedule s;
  for (int i = 0; i < 2; ++i) {
    for (NodeId v = 0; v < red->system().txn(i).num_steps(); ++v) {
      if (prefix->Contains(i, v)) s.push_back(GlobalNode{i, v});
    }
  }
  EXPECT_TRUE(ValidateSchedule(red->system(), s, false).ok());
}

TEST(ReductionTest, WitnessRejectsNonSatisfyingAssignment) {
  CnfFormula f = Figure5Formula();
  auto red = SatReduction::FromFormula(f);
  ASSERT_TRUE(red.ok());
  // x0 = false, x1 = false falsifies clause 0.
  EXPECT_EQ(red->WitnessPrefix({false, false}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(red->WitnessPrefix({true}).ok());  // Wrong arity.
}

TEST(ReductionTest, DecodedCycleAssignmentSatisfiesFormula) {
  CnfFormula f = Figure5Formula();
  auto red = SatReduction::FromFormula(f);
  ASSERT_TRUE(red.ok());
  auto sat = SolveDpll(f);
  ASSERT_TRUE(sat.ok());
  auto prefix = red->WitnessPrefix(sat->assignment);
  ASSERT_TRUE(prefix.ok());
  ReductionGraph rg(*prefix);
  std::vector<GlobalNode> cycle = rg.FindGlobalCycle();
  ASSERT_FALSE(cycle.empty());
  std::vector<bool> decoded = red->DecodeAssignment(cycle);
  EXPECT_TRUE(f.IsSatisfiedBy(decoded));
}

// Completeness on random satisfiable instances of growing size.
TEST(ReductionProperty, SatisfiableInstancesYieldDeadlockPrefixes) {
  int sat_seen = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ThreeSatPrimeGenOptions gopts;
    gopts.num_vars = 2 + static_cast<int>(seed % 7);
    gopts.seed = seed;
    auto f = GenerateThreeSatPrime(gopts);
    ASSERT_TRUE(f.ok());
    auto sat = SolveDpll(*f);
    ASSERT_TRUE(sat.ok());
    if (!sat->satisfiable) continue;
    ++sat_seen;

    auto red = SatReduction::FromFormula(*f);
    ASSERT_TRUE(red.ok());
    auto prefix = red->WitnessPrefix(sat->assignment);
    ASSERT_TRUE(prefix.ok()) << "seed " << seed;
    ReductionGraph rg(*prefix);
    EXPECT_TRUE(rg.HasCycle()) << "seed " << seed;

    // Decode the found cycle back: it must satisfy the formula (soundness
    // of the decoding on real cycles).
    std::vector<bool> decoded = red->DecodeAssignment(rg.FindGlobalCycle());
    EXPECT_TRUE(f->IsSatisfiedBy(decoded)) << "seed " << seed;
  }
  EXPECT_GT(sat_seen, 5);
}

// Probabilistic soundness: for UNSAT formulas, random legal executions of
// the reduced pair never pass through a prefix with a cyclic reduction
// graph (if one were reachable, Theorem 1 would give a deadlock and the
// decoded assignment would satisfy an unsatisfiable formula).
TEST(ReductionProperty, UnsatInstanceRandomWalksStayAcyclic) {
  CnfFormula f(1, {{Pos(0)}, {Pos(0)}, {Neg(0)}});  // UNSAT 3SAT'.
  ASSERT_FALSE(SolveDpll(f)->satisfiable);
  auto red = SatReduction::FromFormula(f);
  ASSERT_TRUE(red.ok());
  const TransactionSystem& sys = red->system();
  StateSpace space(&sys);
  Rng rng(7);
  for (int walk = 0; walk < 60; ++walk) {
    ExecState s = space.EmptyState();
    for (;;) {
      ReductionGraph rg(space.ToPrefixSet(s));
      ASSERT_FALSE(rg.HasCycle()) << "walk " << walk;
      std::vector<GlobalNode> moves = space.LegalMoves(s);
      if (moves.empty()) break;
      s = space.Apply(s, moves[rng.NextBelow(moves.size())]);
    }
    // No deadlock either: the walk must end having executed everything.
    EXPECT_TRUE(space.IsComplete(s)) << "walk " << walk;
  }
}

// The same random-walk check on a satisfiable instance CAN find deadlock
// states; steer the walk using the witness prefix to confirm one is
// genuinely reachable step by step.
TEST(ReductionProperty, WitnessPrefixIsReachableByScheduling) {
  CnfFormula f = Figure5Formula();
  auto red = SatReduction::FromFormula(f);
  ASSERT_TRUE(red.ok());
  auto sat = SolveDpll(f);
  auto prefix = red->WitnessPrefix(sat->assignment);
  ASSERT_TRUE(prefix.ok());
  StateSpace space(&red->system());
  auto sched = space.FindScheduleBetween(space.EmptyState(),
                                         space.StateOf(*prefix),
                                         /*max_states=*/100'000);
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(sched->has_value());
  EXPECT_TRUE(ValidateSchedule(red->system(), **sched, false).ok());
}

}  // namespace
}  // namespace wydb
