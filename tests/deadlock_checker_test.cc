// Tests for the exact deadlock-freedom checker (Theorem 1), including the
// equivalence of its two detection modes.
#include <gtest/gtest.h>

#include "analysis/deadlock_checker.h"
#include "core/reduction_graph.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSystem;

TransactionSystem ClassicDeadlockPair(const Database* db) {
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db, "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db, "T2", {"Ly", "Lx", "Ux", "Uy"}));
  return MakeSystem(db, std::move(txns));
}

TEST(DeadlockCheckerTest, ClassicPairDeadlocks) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
  ASSERT_TRUE(report->witness.has_value());
  // The witness schedule must be a legal partial schedule.
  EXPECT_TRUE(
      ValidateSchedule(sys, report->witness->schedule, false).ok());
}

TEST(DeadlockCheckerTest, SameLockOrderIsDeadlockFree) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
  EXPECT_FALSE(report->witness.has_value());
}

TEST(DeadlockCheckerTest, DisjointTransactionsAreDeadlockFree) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ux"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Ly", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
}

TEST(DeadlockCheckerTest, SingleTransactionNeverDeadlocks) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Uy", "Ux"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  auto report = CheckDeadlockFreedom(sys);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
}

TEST(DeadlockCheckerTest, ReductionGraphModeAgreesOnClassicPair) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  DeadlockCheckOptions opts;
  opts.mode = DeadlockDetectionMode::kReductionGraph;
  auto report = CheckDeadlockFreedom(sys, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
  ASSERT_TRUE(report->witness.has_value());
  EXPECT_FALSE(report->witness->reduction_cycle.empty());
}

TEST(DeadlockCheckerTest, ReductionGraphModeDetectsDoomEarlier) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  DeadlockCheckOptions stuck, reduction;
  stuck.mode = DeadlockDetectionMode::kStuckState;
  reduction.mode = DeadlockDetectionMode::kReductionGraph;
  auto a = CheckDeadlockFreedom(sys, stuck);
  auto b = CheckDeadlockFreedom(sys, reduction);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both find the deadlock; the reduction-graph witness is no longer than
  // the stuck-state witness (it flags the doomed prefix at or before the
  // moment everything wedges).
  EXPECT_LE(b->witness->schedule.size(), a->witness->schedule.size());
}

TEST(DeadlockCheckerTest, ThreeRingDeadlocks) {
  auto ring = GenerateRingSystem(3);
  ASSERT_TRUE(ring.ok());
  auto report = CheckDeadlockFreedom(*ring->system);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
}

TEST(DeadlockCheckerTest, BudgetIsReported) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  DeadlockCheckOptions opts;
  opts.max_states = 1;
  auto report = CheckDeadlockFreedom(sys, opts);
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeadlockCheckerTest, IsDeadlockPrefixOnClassicPair) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  TransactionSystem sys = ClassicDeadlockPair(db.get());
  // T1 holds x, T2 holds y: reachable and doomed.
  auto p = PrefixSet::FromNodeSets(&sys, {{0}, {0}});
  ASSERT_TRUE(p.ok());
  auto verdict = IsDeadlockPrefix(sys, *p);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);

  // The empty prefix is never a deadlock prefix.
  PrefixSet empty(&sys);
  auto nope = IsDeadlockPrefix(sys, empty);
  ASSERT_TRUE(nope.ok());
  EXPECT_FALSE(*nope);
}

TEST(DeadlockCheckerTest, CyclicReductionGraphOfUnreachablePrefix) {
  // A prefix whose reduction graph is cyclic but which has NO schedule is
  // not a deadlock prefix (condition (1) of the definition).
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
  // Both prefixes = {Lx}: impossible (both would hold x).
  auto p = PrefixSet::FromNodeSets(&sys, {{0}, {0}});
  ASSERT_TRUE(p.ok());
  auto verdict = IsDeadlockPrefix(sys, *p);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
}

// Property: the two detection modes decide the same predicate (Theorem 1).
TEST(DeadlockCheckerProperty, ModesAgreeOnRandomSystems) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 2 + static_cast<int>(seed % 2);
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    DeadlockCheckOptions stuck, reduction;
    stuck.mode = DeadlockDetectionMode::kStuckState;
    reduction.mode = DeadlockDetectionMode::kReductionGraph;
    auto a = CheckDeadlockFreedom(*sys->system, stuck);
    auto b = CheckDeadlockFreedom(*sys->system, reduction);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->deadlock_free, b->deadlock_free) << "seed " << seed;
  }
}

// Property: memoization changes cost, not the verdict.
TEST(DeadlockCheckerProperty, MemoizationDoesNotChangeVerdict) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomSystemOptions opts;
    opts.num_transactions = 2;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    DeadlockCheckOptions memo, nomemo;
    nomemo.memoize = false;
    nomemo.max_states = 2'000'000;
    auto a = CheckDeadlockFreedom(*sys->system, memo);
    auto b = CheckDeadlockFreedom(*sys->system, nomemo);
    ASSERT_TRUE(a.ok());
    if (b.ok()) {
      EXPECT_EQ(a->deadlock_free, b->deadlock_free) << "seed " << seed;
      EXPECT_GE(b->states_visited, a->states_visited);
    }
  }
}

// Property: every witness schedule is legal and genuinely stuck.
TEST(DeadlockCheckerProperty, WitnessesAreRealDeadlocks) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    RandomSystemOptions opts;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    auto report = CheckDeadlockFreedom(*sys->system);
    ASSERT_TRUE(report.ok());
    if (report->deadlock_free) continue;
    const Schedule& w = report->witness->schedule;
    ASSERT_TRUE(ValidateSchedule(*sys->system, w, false).ok())
        << "seed " << seed;
    // Stuck: no completion exists from the witness prefix.
    auto completion = TryComplete(*sys->system, w);
    ASSERT_TRUE(completion.ok());
    EXPECT_FALSE(completion->has_value()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wydb
