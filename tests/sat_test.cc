// Tests for the SAT substrate: CNF, DPLL, 3SAT' validation/generation.
#include <gtest/gtest.h>

#include "analysis/sat/cnf.h"
#include "analysis/sat/dpll.h"
#include "analysis/sat/threesat_prime.h"
#include "common/random.h"

namespace wydb {
namespace {

Literal Pos(int v) { return Literal{v, true}; }
Literal Neg(int v) { return Literal{v, false}; }

TEST(CnfTest, EvaluateAssignment) {
  CnfFormula f(2, {{Pos(0), Neg(1)}, {Pos(1)}});
  EXPECT_TRUE(f.IsSatisfiedBy({true, true}));
  EXPECT_FALSE(f.IsSatisfiedBy({false, true}));
  EXPECT_FALSE(f.IsSatisfiedBy({true, false}));  // Second clause fails.
}

TEST(CnfTest, AddClauseGrowsVars) {
  CnfFormula f;
  f.AddClause({Pos(4)});
  EXPECT_EQ(f.num_vars(), 5);
  EXPECT_EQ(f.num_clauses(), 1);
}

TEST(CnfTest, ValidateRejectsEmptyClause) {
  CnfFormula f(1, {{}});
  EXPECT_FALSE(f.Validate().ok());
}

TEST(CnfTest, ValidateRejectsOutOfRange) {
  CnfFormula f(1, {{Pos(3)}});
  EXPECT_FALSE(f.Validate().ok());
}

TEST(CnfTest, ToStringRendering) {
  CnfFormula f(2, {{Pos(0), Neg(1)}});
  EXPECT_EQ(f.ToString(), "(x0 + !x1)");
}

TEST(DpllTest, TrivialSat) {
  CnfFormula f(1, {{Pos(0)}});
  auto r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->satisfiable);
  EXPECT_TRUE(f.IsSatisfiedBy(r->assignment));
}

TEST(DpllTest, TrivialUnsat) {
  CnfFormula f(1, {{Pos(0)}, {Neg(0)}});
  auto r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

TEST(DpllTest, UnitPropagationChain) {
  // x0, x0->x1, x1->x2 forces all true.
  CnfFormula f(3, {{Pos(0)}, {Neg(0), Pos(1)}, {Neg(1), Pos(2)}});
  auto r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->satisfiable);
  EXPECT_TRUE(r->assignment[0]);
  EXPECT_TRUE(r->assignment[1]);
  EXPECT_TRUE(r->assignment[2]);
}

TEST(DpllTest, PigeonholeUnsat) {
  // 3 pigeons, 2 holes: vars p_{i,h} = i*2+h.
  CnfFormula f;
  for (int i = 0; i < 3; ++i) f.AddClause({Pos(i * 2), Pos(i * 2 + 1)});
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        f.AddClause({Neg(i * 2 + h), Neg(j * 2 + h)});
      }
    }
  }
  auto r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

TEST(DpllTest, SatisfyingAssignmentAlwaysVerifies) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    CnfFormula f;
    int n = 4 + static_cast<int>(rng.NextBelow(4));
    int m = 6 + static_cast<int>(rng.NextBelow(10));
    for (int c = 0; c < m; ++c) {
      std::vector<Literal> clause;
      for (int l = 0; l < 3; ++l) {
        clause.push_back(Literal{static_cast<int>(rng.NextBelow(n)),
                                 rng.NextBernoulli(0.5)});
      }
      f.AddClause(clause);
    }
    auto r = SolveDpll(f);
    ASSERT_TRUE(r.ok());
    if (r->satisfiable) EXPECT_TRUE(f.IsSatisfiedBy(r->assignment));
  }
}

TEST(DpllTest, VerdictMatchesBruteForceOnRandomFormulas) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    CnfFormula f;
    int n = 2 + static_cast<int>(rng.NextBelow(9));  // <= 10 vars.
    int m = 2 + static_cast<int>(rng.NextBelow(30));
    for (int c = 0; c < m; ++c) {
      std::vector<Literal> clause;
      int len = 1 + static_cast<int>(rng.NextBelow(3));
      for (int l = 0; l < len; ++l) {
        clause.push_back(Literal{static_cast<int>(rng.NextBelow(n)),
                                 rng.NextBernoulli(0.5)});
      }
      f.AddClause(clause);
    }
    bool brute_sat = false;
    for (uint32_t bits = 0; bits < (1u << n) && !brute_sat; ++bits) {
      // n vars were drawn but num_vars() can be smaller if the highest
      // ones never appeared in a clause.
      std::vector<bool> a(n);
      for (int v = 0; v < n; ++v) a[v] = (bits >> v) & 1;
      brute_sat = f.IsSatisfiedBy(a);
    }
    auto r = SolveDpll(f);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->satisfiable, brute_sat) << "trial " << trial;
    if (r->satisfiable) EXPECT_TRUE(f.IsSatisfiedBy(r->assignment));
  }
}

TEST(DpllTest, DecisionBudget) {
  // Hard-ish pigeonhole; with a 0-decision budget it must bail out if any
  // branching is needed.
  CnfFormula f;
  for (int i = 0; i < 4; ++i) {
    f.AddClause({Pos(i * 3), Pos(i * 3 + 1), Pos(i * 3 + 2)});
  }
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        f.AddClause({Neg(i * 3 + h), Neg(j * 3 + h)});
      }
    }
  }
  DpllOptions opts;
  opts.max_decisions = 1;
  auto r = SolveDpll(f, opts);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------
// 3SAT'.

TEST(ThreeSatPrimeTest, ValidatesTheFigure5Formula) {
  // (x0 + x1)(x0 + !x1)(!x0 + x1) — each variable twice positive, once
  // negative.
  CnfFormula f(2, {{Pos(0), Pos(1)}, {Pos(0), Neg(1)}, {Neg(0), Pos(1)}});
  auto occ = ValidateThreeSatPrime(f);
  ASSERT_TRUE(occ.ok());
  EXPECT_EQ(occ->first_positive[0], 0);
  EXPECT_EQ(occ->second_positive[0], 1);
  EXPECT_EQ(occ->negative[0], 2);
  EXPECT_EQ(occ->first_positive[1], 0);
  EXPECT_EQ(occ->second_positive[1], 2);
  EXPECT_EQ(occ->negative[1], 1);
}

TEST(ThreeSatPrimeTest, RejectsWrongOccurrenceCounts) {
  CnfFormula once(1, {{Pos(0)}, {Neg(0)}});
  EXPECT_FALSE(ValidateThreeSatPrime(once).ok());
  CnfFormula triple_pos(
      1, {{Pos(0)}, {Pos(0)}, {Pos(0)}, {Neg(0)}});
  EXPECT_FALSE(ValidateThreeSatPrime(triple_pos).ok());
  CnfFormula double_neg(1, {{Pos(0)}, {Pos(0)}, {Neg(0)}, {Neg(0)}});
  EXPECT_FALSE(ValidateThreeSatPrime(double_neg).ok());
}

TEST(ThreeSatPrimeTest, RejectsBigClause) {
  CnfFormula f(4, {{Pos(0), Pos(1), Pos(2), Pos(3)}});
  EXPECT_FALSE(ValidateThreeSatPrime(f).ok());
}

TEST(ThreeSatPrimeTest, RejectsRepeatedVariableInClause) {
  CnfFormula f(1, {{Pos(0), Neg(0)}, {Pos(0)}});
  EXPECT_FALSE(ValidateThreeSatPrime(f).ok());
}

TEST(ThreeSatPrimeTest, GeneratorProducesValidInstances) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ThreeSatPrimeGenOptions opts;
    opts.num_vars = 3 + static_cast<int>(seed % 6);
    opts.seed = seed;
    auto f = GenerateThreeSatPrime(opts);
    ASSERT_TRUE(f.ok()) << "seed " << seed;
    EXPECT_TRUE(ValidateThreeSatPrime(*f).ok()) << "seed " << seed;
  }
}

TEST(ThreeSatPrimeTest, GeneratorHonorsClauseCount) {
  ThreeSatPrimeGenOptions opts;
  opts.num_vars = 4;
  opts.num_clauses = 6;
  auto f = GenerateThreeSatPrime(opts);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_clauses(), 6);
  EXPECT_FALSE(GenerateThreeSatPrime(
                   {.num_vars = 4, .num_clauses = 99, .seed = 1})
                   .ok());
}

TEST(ThreeSatPrimeTest, KnownUnsatInstance) {
  // (x0)(x0)(!x0) is a valid 3SAT' formula and unsatisfiable.
  CnfFormula f(1, {{Pos(0)}, {Pos(0)}, {Neg(0)}});
  ASSERT_TRUE(ValidateThreeSatPrime(f).ok());
  auto r = SolveDpll(f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->satisfiable);
}

}  // namespace
}  // namespace wydb
