// Unit tests for the reduced search engine's two layers (DESIGN.md §8):
// transaction orbits + orbit canonicalization (core/symmetry), the
// persistent-move pruning of StateSpace::ExpandReducedInto, the
// canonical-key store hooks, and the end-to-end state-count wins of
// SearchEngine::kReduced against the exhaustive engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "core/state_space.h"
#include "core/state_store.h"
#include "core/symmetry.h"
#include "gen/system_gen.h"

namespace wydb {
namespace {

OwnedSystem CertifiedFarm(int workers, int entities = 3) {
  ReplicatedFarmOptions opts;
  opts.workers = workers;
  opts.entities = entities;
  opts.degree = 1;
  opts.certified = true;
  auto sys = GenerateReplicatedFarm(opts);
  EXPECT_TRUE(sys.ok());
  return std::move(*sys);
}

// ---------------------------------------------------------------------------
// TransactionOrbits.
// ---------------------------------------------------------------------------

TEST(TransactionOrbitsTest, FarmWorkersFormOneOrbit) {
  OwnedSystem farm = CertifiedFarm(6);
  TransactionOrbits orbits(*farm.system);
  EXPECT_EQ(orbits.num_orbits(), 1);
  EXPECT_EQ(orbits.largest_orbit(), 6);
  EXPECT_TRUE(orbits.HasNontrivialOrbit());
  for (int i = 0; i < 6; ++i) EXPECT_EQ(orbits.orbit_of(i), 0);
}

TEST(TransactionOrbitsTest, DisjointGridHasOnlyTrivialOrbits) {
  // Grid transactions access pairwise disjoint entities, so no two are
  // structurally equal even though their shapes match.
  auto grid = GenerateDisjointGridSystem(4, 3);
  ASSERT_TRUE(grid.ok());
  TransactionOrbits orbits(*grid->system);
  EXPECT_EQ(orbits.num_orbits(), 4);
  EXPECT_EQ(orbits.largest_orbit(), 1);
  EXPECT_FALSE(orbits.HasNontrivialOrbit());
}

TEST(TransactionOrbitsTest, RingTransactionsAreAsymmetric) {
  // Ring transaction i locks e_i then e_{i+1}: same shape, different
  // entities — structurally distinct.
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  TransactionOrbits orbits(*ring->system);
  EXPECT_EQ(orbits.largest_orbit(), 1);
}

// ---------------------------------------------------------------------------
// OrbitCanonicalizer: permutation-equivalent states collapse to one key
// with a consistent aux cache.
// ---------------------------------------------------------------------------

TEST(OrbitCanonicalizerTest, PermutedFarmStatesShareOneCanonicalKey) {
  OwnedSystem farm = CertifiedFarm(4);
  const TransactionSystem& sys = *farm.system;
  StateSpace space(&sys);
  TransactionOrbits orbits(sys);
  OrbitCanonicalizer canon(&space, &orbits, /*arc_row_words=*/0);

  // Advance worker w through its first two steps (Lock e0, Lock e1); all
  // four choices of w are permutation-equivalent.
  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  std::vector<std::vector<uint64_t>> keys, auxes;
  for (int w = 0; w < 4; ++w) {
    std::vector<uint64_t> state(kw), aux(aw), s2(kw), a2(aw);
    space.InitRoot(state.data(), aux.data());
    space.ApplyInto(state.data(), aux.data(), GlobalNode{w, 0}, s2.data(),
                    a2.data());
    space.ApplyInto(s2.data(), a2.data(), GlobalNode{w, 1}, state.data(),
                    aux.data());
    canon.Canonicalize(state.data(), aux.data());
    keys.push_back(state);
    auxes.push_back(aux);
  }
  for (int w = 1; w < 4; ++w) {
    EXPECT_EQ(keys[w], keys[0]) << "worker " << w;
    EXPECT_EQ(auxes[w], auxes[0]) << "worker " << w;
  }
  // The canonical aux must equal a from-scratch InitAux of the canonical
  // key: frontier blocks and the holder table were permuted coherently.
  std::vector<uint64_t> fresh(aw);
  space.InitAux(keys[0].data(), fresh.data());
  EXPECT_EQ(auxes[0], fresh);
}

TEST(OrbitCanonicalizerTest, ArcMatrixPermutesWithTheExecBlocks) {
  // Lemma layout: exec blocks + n rows of arc words. Distinct exec
  // blocks (worker a one step in, worker b two steps in) with an arc
  // a -> b: every (a, b) choice is one symmetry class, and since the
  // blocks are untied the sort must merge all six images — carrying the
  // arc endpoints along with the blocks.
  OwnedSystem farm = CertifiedFarm(3);
  const TransactionSystem& sys = *farm.system;
  StateSpace space(&sys);
  TransactionOrbits orbits(sys);
  const int n = sys.num_transactions();
  const int row_words = (n + 63) / 64;
  OrbitCanonicalizer canon(&space, &orbits, row_words);
  const int kw = space.words_per_state() + n * row_words;

  auto make_key = [&](int a, int b) {
    std::vector<uint64_t> key(kw, 0);
    key[space.txn_word_offset(a)] = 0b1;
    key[space.txn_word_offset(b)] = 0b11;
    uint64_t* arcs = key.data() + space.words_per_state();
    arcs[a * row_words + b / 64] |= 1ULL << (b % 64);
    return key;
  };

  std::vector<std::vector<uint64_t>> canonical;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      std::vector<uint64_t> key = make_key(a, b);
      canon.Canonicalize(key.data(), nullptr);
      canonical.push_back(std::move(key));
    }
  }
  for (size_t i = 1; i < canonical.size(); ++i) {
    EXPECT_EQ(canonical[i], canonical[0]) << "image " << i;
  }
  // And the canonical arc runs from the one-step slot to the two-step
  // slot, whatever slots the sort put them in.
  int slot_a = -1, slot_b = -1;
  for (int i = 0; i < n; ++i) {
    if (canonical[0][space.txn_word_offset(i)] == 0b1) slot_a = i;
    if (canonical[0][space.txn_word_offset(i)] == 0b11) slot_b = i;
  }
  ASSERT_GE(slot_a, 0);
  ASSERT_GE(slot_b, 0);
  const uint64_t* arcs = canonical[0].data() + space.words_per_state();
  EXPECT_TRUE((arcs[slot_a * row_words + slot_b / 64] >> (slot_b % 64)) & 1);
}

TEST(OrbitCanonicalizerTest, ExecTiesStayUnsortedButSound) {
  // Two workers with *identical* exec blocks but different arc rows: the
  // stable sort keys on exec content only, so these images need not
  // merge — but each canonicalization must still be a valid automorphic
  // image (idempotent, same block multiset). Coarser, never wrong
  // (DESIGN.md §8.2).
  OwnedSystem farm = CertifiedFarm(3);
  StateSpace space(farm.system.get());
  TransactionOrbits orbits(*farm.system);
  const int n = 3, row_words = 1;
  OrbitCanonicalizer canon(&space, &orbits, row_words);
  const int kw = space.words_per_state() + n * row_words;

  std::vector<uint64_t> key(kw, 0);
  key[space.txn_word_offset(2)] = 0b1;  // Worker 2 ahead; 0 and 1 tied.
  uint64_t* arcs = key.data() + space.words_per_state();
  arcs[0] = 0b100;  // T0 -> T2, distinguishing the tied pair.
  std::vector<uint64_t> once = key;
  canon.Canonicalize(once.data(), nullptr);
  std::vector<uint64_t> twice = once;
  canon.Canonicalize(twice.data(), nullptr);
  EXPECT_EQ(twice, once);
}

TEST(OrbitCanonicalizerTest, CanonicalizeKeyReportsTheSortPermutation) {
  OwnedSystem farm = CertifiedFarm(3);
  StateSpace space(farm.system.get());
  TransactionOrbits orbits(*farm.system);
  OrbitCanonicalizer canon(&space, &orbits, 0);

  // Worker 2 ahead of workers 0, 1: the all-zero blocks sort first
  // (memcmp order), so slot 2's content must come from somewhere else.
  const int kw = space.words_per_state();
  std::vector<uint64_t> key(kw, 0);
  const int bit = space.txn_word_offset(2) * 64 + 0;
  key[bit / 64] |= 1ULL << (bit % 64);
  std::vector<int> perm(3);
  canon.CanonicalizeKey(key.data(), perm.data());
  // Valid permutation within the orbit...
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
  // ...that maps the canonical key back onto the input: exactly one slot
  // carries the advanced block, and it came from input slot 2.
  int advanced_slots = 0;
  for (int i = 0; i < 3; ++i) {
    const int b = space.txn_word_offset(i) * 64;
    if ((key[b / 64] >> (b % 64)) & 1) {
      ++advanced_slots;
      EXPECT_EQ(perm[i], 2);
    }
  }
  EXPECT_EQ(advanced_slots, 1);
}

// ---------------------------------------------------------------------------
// Store hooks.
// ---------------------------------------------------------------------------

TEST(CanonicalStoreTest, InternCanonicalMergesPermutedSiblings) {
  OwnedSystem farm = CertifiedFarm(4);
  StateSpace space(farm.system.get());
  TransactionOrbits orbits(*farm.system);
  OrbitCanonicalizer canon(&space, &orbits, 0);

  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  StateStore store(kw, aw);
  store.set_canonicalizer(&canon);

  std::vector<uint64_t> root(kw), root_aux(aw);
  space.InitRoot(root.data(), root_aux.data());
  uint32_t ids[4];
  for (int w = 0; w < 4; ++w) {
    std::vector<uint64_t> state(kw), aux(aw);
    space.ApplyInto(root.data(), root_aux.data(), GlobalNode{w, 0},
                    state.data(), aux.data());
    ids[w] = store.InternCanonical(state.data(), aux.data()).id;
  }
  // All four "some worker holds the latch" states are one orbit.
  EXPECT_EQ(ids[1], ids[0]);
  EXPECT_EQ(ids[2], ids[0]);
  EXPECT_EQ(ids[3], ids[0]);
  EXPECT_EQ(store.size(), 1u);
}

// ---------------------------------------------------------------------------
// Persistent-move pruning.
// ---------------------------------------------------------------------------

TEST(ExpandReducedTest, DisjointEntitiesCollapseToOneMove) {
  auto grid = GenerateDisjointGridSystem(4, 3);
  ASSERT_TRUE(grid.ok());
  StateSpace space(grid->system.get());
  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  std::vector<uint64_t> state(kw), aux(aw);
  space.InitRoot(state.data(), aux.data());

  std::vector<GlobalNode> full, reduced;
  space.ExpandInto(aux.data(), &full);
  EXPECT_EQ(full.size(), 4u);  // Every transaction's first Lock.
  int pruned = space.ExpandReducedInto(state.data(), aux.data(), &reduced);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(pruned, 3);
  // The surviving move is the first legal one — determinism matters for
  // thread-count-independent results.
  EXPECT_EQ(reduced[0], full[0]);
}

TEST(ExpandReducedTest, ContendedEntitiesKeepTheFullMoveSet) {
  // Ring root: every entity's other accessor still has its Unlock ahead,
  // so no move is invisible and nothing may be pruned.
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  StateSpace space(ring->system.get());
  std::vector<uint64_t> state(space.words_per_state());
  std::vector<uint64_t> aux(space.aux_words());
  space.InitRoot(state.data(), aux.data());

  std::vector<GlobalNode> full, reduced;
  space.ExpandInto(aux.data(), &full);
  int pruned = space.ExpandReducedInto(state.data(), aux.data(), &reduced);
  EXPECT_EQ(pruned, 0);
  EXPECT_EQ(reduced, full);
}

TEST(ExpandReducedTest, EmptyExpansionStillMeansStuck) {
  // A deadlocked ring-2 state: T0 holds e0, T1 holds e1, both next Locks
  // blocked. The reduced expansion must stay empty (stuck detection).
  auto ring = GenerateRingSystem(2);
  ASSERT_TRUE(ring.ok());
  StateSpace space(ring->system.get());
  const int kw = space.words_per_state();
  const int aw = space.aux_words();
  std::vector<uint64_t> s0(kw), a0(aw), s1(kw), a1(aw), s2(kw), a2(aw);
  space.InitRoot(s0.data(), a0.data());
  space.ApplyInto(s0.data(), a0.data(), GlobalNode{0, 0}, s1.data(),
                  a1.data());
  space.ApplyInto(s1.data(), a1.data(), GlobalNode{1, 0}, s2.data(),
                  a2.data());
  std::vector<GlobalNode> reduced;
  EXPECT_EQ(space.ExpandReducedInto(s2.data(), a2.data(), &reduced), 0);
  EXPECT_TRUE(reduced.empty());
  EXPECT_FALSE(space.IsComplete(s2.data()));
}

// ---------------------------------------------------------------------------
// End-to-end kReduced: verdict parity and the ISSUE's >= 5x state-count
// acceptance on the grid and farm shapes.
// ---------------------------------------------------------------------------

TEST(ReducedEngineTest, GridDeadlockAtLeastFiveTimesFewerStates) {
  auto grid = GenerateDisjointGridSystem(4, 3);
  ASSERT_TRUE(grid.ok());
  DeadlockCheckOptions inc, red;
  red.engine = SearchEngine::kReduced;
  red.search_threads = 1;
  auto a = CheckDeadlockFreedom(*grid->system, inc);
  auto b = CheckDeadlockFreedom(*grid->system, red);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->deadlock_free);
  EXPECT_TRUE(b->deadlock_free);
  EXPECT_EQ(a->states_interned, 2401u);  // (2*3+1)^4.
  // The persistent singleton reduces the grid to one path: 4 txns * 6
  // steps + root.
  EXPECT_EQ(b->states_interned, 25u);
  EXPECT_GE(a->states_interned, 5 * b->states_interned);
  EXPECT_GT(b->sleep_set_pruned, 0u);
}

TEST(ReducedEngineTest, FarmDeadlockAtLeastFiveTimesFewerStates) {
  OwnedSystem farm = CertifiedFarm(6);
  DeadlockCheckOptions inc, red;
  red.engine = SearchEngine::kReduced;
  red.search_threads = 1;
  auto a = CheckDeadlockFreedom(*farm.system, inc);
  auto b = CheckDeadlockFreedom(*farm.system, red);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->deadlock_free);
  EXPECT_TRUE(b->deadlock_free);
  // Completed-worker subsets collapse to counts: 2^k * ... -> O(k * m).
  EXPECT_GE(a->states_interned, 5 * b->states_interned);
}

TEST(ReducedEngineTest, FarmSafetySearchCollapsesToo) {
  OwnedSystem farm = CertifiedFarm(5);
  SafetyCheckOptions inc, red;
  red.engine = SearchEngine::kReduced;
  red.search_threads = 1;
  auto a = CheckSafeAndDeadlockFree(*farm.system, inc);
  auto b = CheckSafeAndDeadlockFree(*farm.system, red);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->holds);
  EXPECT_TRUE(b->holds);
  EXPECT_GE(a->states_visited, 5 * b->states_visited);
}

TEST(ReducedEngineTest, ThreadCountDoesNotChangeTheResult) {
  OwnedSystem farm = CertifiedFarm(5);
  auto ring = GenerateRingSystem(5);
  ASSERT_TRUE(ring.ok());
  for (const TransactionSystem* sys : {farm.system.get(),
                                       ring->system.get()}) {
    DeadlockCheckOptions red;
    red.engine = SearchEngine::kReduced;
    red.search_threads = 1;
    auto serial = CheckDeadlockFreedom(*sys, red);
    ASSERT_TRUE(serial.ok());
    for (int threads : {2, 4}) {
      red.search_threads = threads;
      auto parallel = CheckDeadlockFreedom(*sys, red);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->deadlock_free, serial->deadlock_free);
      EXPECT_EQ(parallel->states_visited, serial->states_visited);
      EXPECT_EQ(parallel->states_interned, serial->states_interned);
      ASSERT_EQ(parallel->witness.has_value(), serial->witness.has_value());
      if (parallel->witness.has_value()) {
        EXPECT_EQ(parallel->witness->schedule, serial->witness->schedule);
      }
    }
  }
}

TEST(ReducedEngineTest, LargeFarmFinishesWhereExhaustiveSearchCannot) {
  // The "large-symmetric" shape of the bench series: at k = 12 workers
  // the exhaustive engines must intern ~2^12 completed-subset states per
  // progress point, while the reduced engine tracks only (completed
  // count, active progress) pairs — thousands of times fewer.
  OwnedSystem farm = CertifiedFarm(12);
  DeadlockCheckOptions red;
  red.engine = SearchEngine::kReduced;
  red.search_threads = 1;
  red.max_states = 10'000;  // Far below the exhaustive count.
  auto b = CheckDeadlockFreedom(*farm.system, red);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->deadlock_free);
  EXPECT_LE(b->states_interned, 200u);

  DeadlockCheckOptions inc;
  inc.max_states = 10'000;
  auto a = CheckDeadlockFreedom(*farm.system, inc);
  EXPECT_FALSE(a.ok());  // ResourceExhausted within the same budget.
}

}  // namespace
}  // namespace wydb
