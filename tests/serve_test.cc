// End-to-end tests of the analysis server (docs/SERVE.md): the line
// protocol, the canonical-key verdict cache (permuted resubmissions must
// hit), single-transaction incremental recertification with verdicts
// identical to a full exact run, malformed-request isolation, and the
// certificate round trip the cache is built on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/certificate.h"
#include "analysis/safety_checker.h"
#include "core/canonical.h"
#include "gen/system_gen.h"
#include "io/text_format.h"
#include "serve/server.h"
#include "serve/verdict_cache.h"

namespace wydb {
namespace {

/// Runs one stream worth of requests against `server` and returns the
/// response lines (all of them, '.' separators included).
std::vector<std::string> Drive(Server& server, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  server.ServeStream(in, out);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream split(out.str());
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

bool AnyLineContains(const std::vector<std::string>& lines,
                     const std::string& needle) {
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string FirstLineWith(const std::vector<std::string>& lines,
                          const std::string& needle) {
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) return l;
  }
  return "";
}

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Two transactions locking {x, y} in opposite orders: deadlocks, so
/// certification refutes with a witness.
constexpr char kDeadlockPair[] =
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Ly Lx Uy Ux\n";

/// kDeadlockPair with sites, entities, and transactions renamed and the
/// transactions listed in the other order — isomorphic, so it must be an
/// exact cache hit.
constexpr char kDeadlockPairPermuted[] =
    "site a2: beta\n"
    "site a1: alpha\n"
    "txn B: Lbeta Lalpha Ubeta Ualpha\n"
    "txn A: Lalpha Lbeta Ualpha Ubeta\n";

/// Uniform lock order: safe and deadlock-free.
constexpr char kCertifiedPair[] =
    "site s1: x\n"
    "site s2: y\n"
    "txn T1: Lx Ly Ux Uy\n"
    "txn T2: Lx Ly Ux Uy\n";

Server MakeServer() {
  ServerOptions opts;
  auto server = Server::Create(opts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

std::string CertifyRequest(const std::string& workload,
                           const std::string& params = "") {
  return "certify" + (params.empty() ? "" : " " + params) + "\n" + workload +
         "end\n";
}

TEST(ServeTest, PermutedResubmissionIsACacheHit) {
  Server server = MakeServer();
  auto first = Drive(server, CertifyRequest(kDeadlockPair));
  EXPECT_TRUE(AnyLineContains(first, "certified=no source=full")) << first[0];
  EXPECT_TRUE(AnyLineContains(first, "witness: "));
  EXPECT_TRUE(AnyLineContains(first, "cycle: "));

  auto second = Drive(server, CertifyRequest(kDeadlockPairPermuted));
  const std::string verdict = FirstLineWith(second, "verdict: ");
  EXPECT_NE(verdict.find("certified=no source=cache"), std::string::npos)
      << verdict;
  // The cached witness is remapped onto the request's own names and
  // countersigned before being served.
  const std::string witness = FirstLineWith(second, "witness: ");
  EXPECT_NE(witness.find("A."), std::string::npos) << witness;
  EXPECT_NE(witness.find("B."), std::string::npos) << witness;
  EXPECT_FALSE(AnyLineContains(second, "T1")) << "cached names leaked";

  // The hit is observable in the stats counters, per the acceptance bar.
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().cache_misses, 1u);
  EXPECT_EQ(server.stats().full_certifications, 1u);

  // Both verdict lines carry the same canonical key.
  const std::string k1 = FirstLineWith(first, "key=");
  const std::string k2 = FirstLineWith(second, "key=");
  EXPECT_EQ(k1.substr(k1.find("key=")), k2.substr(k2.find("key=")));
}

TEST(ServeTest, RemovingATransactionIsAMonotoneShortcut) {
  Server server = MakeServer();
  const std::string three =
      "site s1: x\nsite s2: y\n"
      "txn T1: Lx Ly Ux Uy\ntxn T2: Lx Ly Ux Uy\ntxn T3: Lx Ux\n";
  Drive(server, CertifyRequest(three));
  auto out = Drive(server, CertifyRequest(kCertifiedPair));
  const std::string verdict = FirstLineWith(out, "verdict: ");
  EXPECT_NE(verdict.find("certified=yes source=incremental states=0"),
            std::string::npos)
      << verdict;
  EXPECT_EQ(server.stats().monotone_shortcuts, 1u);
  EXPECT_EQ(server.stats().incremental_certifications, 1u);
}

TEST(ServeTest, AddingATransactionRunsTheDeltaGate) {
  Server server = MakeServer();
  Drive(server, CertifyRequest(kCertifiedPair));
  const std::string payload = std::string(kCertifiedPair) + "txn T3: Lx Ux\n";
  auto out = Drive(server, CertifyRequest(payload));
  const std::string verdict = FirstLineWith(out, "verdict: ");
  EXPECT_NE(verdict.find("certified=yes source=incremental"),
            std::string::npos)
      << verdict;
  EXPECT_EQ(server.stats().delta_searches, 1u);
  EXPECT_GT(server.stats().delta_skipped_tests, 0u);
}

TEST(ServeTest, AddedTransactionReusesARefutationWitness) {
  Server server = MakeServer();
  Drive(server, CertifyRequest(kDeadlockPair));
  const std::string grown = std::string(kDeadlockPair) + "txn T3: Lx Ux\n";
  auto out = Drive(server, CertifyRequest(grown));
  const std::string verdict = FirstLineWith(out, "verdict: ");
  EXPECT_NE(verdict.find("certified=no source=incremental states=0"),
            std::string::npos)
      << verdict;
  EXPECT_TRUE(AnyLineContains(out, "witness: "));
  EXPECT_EQ(server.stats().witness_reuses, 1u);
}

TEST(ServeTest, MalformedRequestsAreIsolated) {
  Server server = MakeServer();
  const std::string bad =
      "certify\nsite s1: x\ntxn T: Lx Ux\ntxn T: Lx Ux\nend\n";
  const std::string good = CertifyRequest(kCertifiedPair);
  const std::string unknown = "frobnicate\n";
  auto out = Drive(server, bad + unknown + good + "stats\nquit\n");

  // The duplicate-name error names both definition lines and echoes the
  // offending payload line; the stream then keeps serving.
  const std::string err = FirstLineWith(out, "error: ");
  EXPECT_NE(err.find("duplicate transaction 'T'"), std::string::npos) << err;
  EXPECT_TRUE(AnyLineContains(out, "echo: txn T: Lx Ux"));
  EXPECT_TRUE(AnyLineContains(out, "error: unknown verb 'frobnicate'"));
  EXPECT_TRUE(AnyLineContains(out, "certified=yes"));
  EXPECT_TRUE(AnyLineContains(out, "bye"));
  EXPECT_EQ(server.stats().errors, 2u);
  // Every response, including errors, is '.'-terminated: 5 requests.
  int dots = 0;
  for (const std::string& l : out) {
    if (l == ".") ++dots;
  }
  EXPECT_EQ(dots, 5);
}

TEST(ServeTest, UnterminatedPayloadEndsTheStreamWithAnError) {
  Server server = MakeServer();
  auto out = Drive(server, "certify\nsite s1: x\n");
  EXPECT_TRUE(AnyLineContains(out, "error: unexpected EOF before 'end'"));
  EXPECT_EQ(out.back(), ".");
  // The server object itself survives for the next connection.
  auto again = Drive(server, CertifyRequest(kCertifiedPair));
  EXPECT_TRUE(AnyLineContains(again, "certified=yes"));
}

TEST(ServeTest, StateBudgetSurfacesAsAnErrorNotACrash) {
  Server server = MakeServer();
  auto out = Drive(server, CertifyRequest(kDeadlockPair, "max_states=1"));
  EXPECT_TRUE(AnyLineContains(out, "error: ")) << out[0];
  EXPECT_FALSE(AnyLineContains(out, "verdict: "));
  auto again = Drive(server, CertifyRequest(kDeadlockPair));
  EXPECT_TRUE(AnyLineContains(again, "certified=no source=full"));
}

TEST(ServeTest, GenerousTimeoutDoesNotChangeTheVerdict) {
  Server server = MakeServer();
  auto out = Drive(server, CertifyRequest(kDeadlockPair, "timeout_ms=60000"));
  EXPECT_TRUE(AnyLineContains(out, "certified=no source=full"));
  auto bad = Drive(server, CertifyRequest(kDeadlockPair, "timeout_ms=abc"));
  EXPECT_TRUE(AnyLineContains(bad, "error: bad timeout_ms value"));
  // A timed request proves the budget was live: the engines consulted
  // the clock, and the counter surfaces in the stats verb.
  EXPECT_GT(server.stats().deadline_polls, 0u);
  auto stats = Drive(server, "stats\n");
  const std::string line = FirstLineWith(stats, "stats: ");
  EXPECT_NE(line.find("deadline_polls="), std::string::npos) << line;
  EXPECT_EQ(line.find("deadline_polls=0 "), std::string::npos) << line;
}

TEST(ServeTest, RunawayRequestsAreRejectedConsistently) {
  // Server defaults: timeout_ms=0, max_states=5M. A request that zeroes
  // the state bound, or raises it past the server budget, while leaving
  // the timeout at 0 has no bound left and must be refused.
  Server server = MakeServer();
  auto out = Drive(server, CertifyRequest(kCertifiedPair, "max_states=0"));
  EXPECT_TRUE(AnyLineContains(out, "error: runaway certify rejected"))
      << out[0];
  EXPECT_FALSE(AnyLineContains(out, "verdict: "));
  out = Drive(server, CertifyRequest(kCertifiedPair, "max_states=99999999"));
  EXPECT_TRUE(AnyLineContains(out, "error: runaway certify rejected"));
  EXPECT_EQ(server.stats().runaways_rejected, 2u);
  EXPECT_EQ(server.stats().errors, 2u);

  // Either bound on its own makes the same request acceptable.
  out = Drive(server,
              CertifyRequest(kCertifiedPair, "max_states=0 timeout_ms=60000"));
  EXPECT_TRUE(AnyLineContains(out, "certified=yes")) << out[0];
  out = Drive(server, CertifyRequest(kDeadlockPair, "max_states=1000"));
  EXPECT_TRUE(AnyLineContains(out, "certified=no"));
  EXPECT_EQ(server.stats().runaways_rejected, 2u);

  // An unbounded-states *server* (operator opt-out) only rejects the
  // truly bound-free request.
  ServerOptions opts;
  opts.max_states = 0;
  auto unbounded = Server::Create(opts);
  ASSERT_TRUE(unbounded.ok());
  out = Drive(*unbounded, CertifyRequest(kCertifiedPair, "max_states=0"));
  EXPECT_TRUE(AnyLineContains(out, "error: runaway certify rejected"));
  out = Drive(*unbounded, CertifyRequest(kCertifiedPair, "max_states=500000"));
  EXPECT_TRUE(AnyLineContains(out, "certified=yes"));
}

/// Concurrent sessions against one Server: every session drives the
/// same mixed request script, sharing the verdict cache. Checked under
/// TSan by the CI thread-sanitizer job.
TEST(ServeTest, ConcurrentSessionsShareTheCacheSafely) {
  Server server = MakeServer();
  constexpr int kSessions = 8;
  std::vector<std::string> outputs(kSessions);
  {
    std::vector<std::thread> sessions;
    sessions.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      sessions.emplace_back([&server, &outputs, i] {
        const std::string script = CertifyRequest(kDeadlockPair) +
                                   CertifyRequest(kCertifiedPair) +
                                   CertifyRequest(kDeadlockPairPermuted) +
                                   "stats\n";
        std::istringstream in(script);
        std::ostringstream out;
        server.ServeStream(in, out);
        outputs[i] = out.str();
      });
    }
    for (std::thread& t : sessions) t.join();
  }
  for (int i = 0; i < kSessions; ++i) {
    const std::string& out = outputs[i];
    // Two refutations (the permuted one bit-identical in verdict), one
    // certification, no errors, and a stats line — in every session.
    EXPECT_EQ(CountOccurrences(out, "certified=no"), 2) << "session " << i;
    EXPECT_EQ(CountOccurrences(out, "certified=yes"), 1) << "session " << i;
    EXPECT_EQ(CountOccurrences(out, "error: "), 0) << out;
    EXPECT_NE(out.find("stats: "), std::string::npos);
  }
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.requests, 4u * kSessions);
  EXPECT_EQ(stats.certify_requests, 3u * kSessions);
  EXPECT_EQ(stats.errors, 0u);
  // Every certify either hit or missed; racing sessions may each miss
  // the same key before the first insert lands, but never more often
  // than once per request.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 3u * kSessions);
  EXPECT_GE(stats.cache_misses, 2u);
  EXPECT_EQ(stats.full_certifications, stats.cache_misses);
}

TEST(ServeTest, PreloadPrimesTheCache) {
  Server server = MakeServer();
  ASSERT_TRUE(server.Preload(kDeadlockPair).ok());
  auto out = Drive(server, CertifyRequest(kDeadlockPairPermuted));
  EXPECT_TRUE(AnyLineContains(out, "certified=no source=cache"));
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(ServeTest, StatsLineReflectsTheCounters) {
  Server server = MakeServer();
  Drive(server, CertifyRequest(kDeadlockPair));
  Drive(server, CertifyRequest(kDeadlockPairPermuted));
  auto out = Drive(server, "stats\n");
  const std::string stats = FirstLineWith(out, "stats: ");
  EXPECT_NE(stats.find("certify=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_hits=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_misses=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("full=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("cache_size=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("p50_us="), std::string::npos) << stats;
}

TEST(ServeTest, CompactStoreIsRejectedAtStartup) {
  ServerOptions opts;
  opts.store.encoding = StoreOptions::KeyEncoding::kCompact;
  opts.engine = SearchEngine::kParallelSharded;
  auto server = Server::Create(opts);
  EXPECT_FALSE(server.ok());
}

/// The acceptance bar: on fuzzed systems, ±1-transaction requests served
/// through the cache's incremental paths must produce verdicts identical
/// to a full exact run of the checker on the same request.
TEST(ServeTest, IncrementalVerdictsMatchFullExactOnFuzzedDeltas) {
  int delta_requests = 0;
  uint64_t incremental_served = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 3;
    opts.num_transactions = 4;
    opts.entities_per_txn = 2;
    opts.shared_fraction = seed % 3 == 0 ? 0.4 : 0.0;
    opts.seed = seed;
    auto full = GenerateRandomSystem(opts);
    ASSERT_TRUE(full.ok());
    const TransactionSystem& fsys = *full->system;

    std::vector<Transaction> sub;
    for (int t = 0; t + 1 < fsys.num_transactions(); ++t) {
      sub.push_back(fsys.txn(t));
    }
    auto minus = TransactionSystem::Create(full->db.get(), std::move(sub));
    ASSERT_TRUE(minus.ok()) << minus.status().ToString();

    const std::string full_text = SerializeSystem(fsys);
    const std::string minus_text = SerializeSystem(*minus);

    auto reference = [](const std::string& text) {
      auto parsed = ParseWorkload(text);
      EXPECT_TRUE(parsed.ok());
      SafetyCheckOptions sopts;
      auto report = CheckSafeAndDeadlockFree(*parsed->owned.system, sopts);
      EXPECT_TRUE(report.ok()) << report.status().ToString();
      return report->holds;
    };

    // Addition: certify the base, then the base plus one transaction.
    {
      Server server = MakeServer();
      Drive(server, CertifyRequest(minus_text));
      auto out = Drive(server, CertifyRequest(full_text));
      const std::string verdict = FirstLineWith(out, "verdict: ");
      ASSERT_FALSE(verdict.empty()) << FirstLineWith(out, "error: ");
      const bool served = verdict.find("certified=yes") != std::string::npos;
      EXPECT_EQ(served, reference(full_text)) << "seed " << seed << " add";
      incremental_served += server.stats().incremental_certifications;
      ++delta_requests;
    }
    // Removal: certify the full system, then drop one transaction.
    {
      Server server = MakeServer();
      Drive(server, CertifyRequest(full_text));
      auto out = Drive(server, CertifyRequest(minus_text));
      const std::string verdict = FirstLineWith(out, "verdict: ");
      ASSERT_FALSE(verdict.empty()) << FirstLineWith(out, "error: ");
      const bool served = verdict.find("certified=yes") != std::string::npos;
      EXPECT_EQ(served, reference(minus_text)) << "seed " << seed << " del";
      incremental_served += server.stats().incremental_certifications;
      ++delta_requests;
    }
  }
  EXPECT_GE(delta_requests, 100);
  // The incremental paths must actually be carrying traffic, or this
  // test would be vacuously comparing full runs to full runs.
  EXPECT_GE(incremental_served, 60u);
}

TEST(VerdictCacheTest, EvictsTheLeastRecentlyUsedEntry) {
  auto make_entry = [](const std::string& text, SystemKey* key_out) {
    auto parsed = ParseWorkload(text);
    EXPECT_TRUE(parsed.ok());
    auto key = CanonicalSystemKey(*parsed->owned.system);
    EXPECT_TRUE(key.ok());
    SafetyCheckOptions sopts;
    auto report = CheckSafeAndDeadlockFree(*parsed->owned.system, sopts);
    EXPECT_TRUE(report.ok());
    *key_out = *key;
    return std::make_pair(MakeCertificate(*key, *report),
                          ProfileOf(*parsed->owned.system));
  };
  const std::string a = "site s1: x\ntxn T1: Lx Ux\n";
  const std::string b = "site s1: x\ntxn T1: Sx Ux\n";
  const std::string c = "site s1: x\ntxn T1: Lx Ux\ntxn T2: Lx Ux\n";
  SystemKey ka, kb, kc;
  auto ea = make_entry(a, &ka);
  auto eb = make_entry(b, &kb);
  auto ec = make_entry(c, &kc);

  VerdictCache cache(2);
  cache.Insert(ka, ea.first, ea.second);
  cache.Insert(kb, eb.first, eb.second);
  ASSERT_TRUE(cache.Find(ka).has_value());  // Bump A; B is now LRU.
  cache.Insert(kc, ec.first, ec.second);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.Find(ka).has_value());
  EXPECT_FALSE(cache.Find(kb).has_value());
  EXPECT_TRUE(cache.Find(kc).has_value());
}

TEST(CertificateTest, RoundTripsAndRejectsTampering) {
  auto parsed = ParseWorkload(kDeadlockPair);
  ASSERT_TRUE(parsed.ok());
  auto key = CanonicalSystemKey(*parsed->owned.system);
  ASSERT_TRUE(key.ok());
  SafetyCheckOptions sopts;
  auto report = CheckSafeAndDeadlockFree(*parsed->owned.system, sopts);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->holds);

  const CertificateBundle bundle = MakeCertificate(*key, *report);
  const std::string text = SerializeCertificate(bundle);
  auto back = ParseCertificate(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->certified, bundle.certified);
  EXPECT_EQ(back->canonical_text, bundle.canonical_text);
  EXPECT_EQ(back->key_hash, bundle.key_hash);
  EXPECT_EQ(back->states_visited, bundle.states_visited);
  EXPECT_EQ(back->witness, bundle.witness);
  EXPECT_EQ(back->cycle, bundle.cycle);

  // Flipping the verdict without refreshing the fingerprint is caught.
  std::string tampered = text;
  const size_t pos = tampered.find("certified: no");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 13, "certified: yes");
  auto reject = ParseCertificate(tampered);
  ASSERT_FALSE(reject.ok());
  EXPECT_NE(reject.status().message().find("fingerprint"),
            std::string::npos);

  // The realized witness round-trips through the canonical coordinates.
  auto violation = RealizeWitness(bundle, *key, *parsed->owned.system);
  ASSERT_TRUE(violation.ok()) << violation.status().ToString();
  EXPECT_FALSE(violation->schedule.empty());
}

}  // namespace
}  // namespace wydb
