// Store memory-mode tests (DESIGN.md §9): delta-encoded keys, hash
// compaction, and the disk-spillable frontier must keep the engines'
// bit-identical contract (delta/spill) or its documented relaxation
// (compact: non-certified verdicts, sound witnesses), across shard,
// chunk, and thread counts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/frontier_spill.h"
#include "core/state_store.h"
#include "gen/system_gen.h"

namespace wydb {
namespace {

StoreOptions DeltaOptions(uint64_t budget_mb = 0) {
  StoreOptions o;
  o.encoding = StoreOptions::KeyEncoding::kDelta;
  o.mem_budget_mb = budget_mb;
  return o;
}

StoreOptions CompactOptions() {
  StoreOptions o;
  o.encoding = StoreOptions::KeyEncoding::kCompact;
  return o;
}

// ---------------------------------------------------------------------
// Store level: the delta-encoded staged commit must reproduce serial
// Intern ids, keys (via KeyView reconstruction), parents, and moves bit
// for bit, like the plain-mode harness in state_store_test.cc.

void CheckDeltaCommitMatchesSerial(int key_words, int shards,
                                   size_t chunk_size, int threads,
                                   const std::vector<uint64_t>& keys,
                                   size_t num_keys) {
  StateStore serial(key_words, key_words);
  ShardedStateStore sharded(key_words, key_words, shards, DeltaOptions());
  ThreadPool pool(threads);

  std::vector<uint64_t> aux(key_words);
  auto aux_of = [&](const uint64_t* key) {
    for (int w = 0; w < key_words; ++w) aux[w] = key[w] ^ 5;
    return aux.data();
  };
  uint32_t root_a = serial.Intern(keys.data()).id;
  std::memcpy(serial.MutableAuxOf(root_a), aux_of(keys.data()),
              key_words * sizeof(uint64_t));
  uint32_t root_b = sharded.InternRoot(keys.data());
  std::memcpy(sharded.MutableAuxOf(root_b), aux_of(keys.data()),
              key_words * sizeof(uint64_t));
  ASSERT_EQ(root_a, root_b);

  // The parent cycles through the live serial id range, so the staged
  // batch holds deltas against both committed parents and parents that
  // are themselves staged in this batch (id < child id either way).
  std::vector<ShardedStateStore::Staging> chunks;
  size_t staged = 0;
  for (size_t i = 1; i < num_keys;) {
    chunks.emplace_back();
    sharded.ResetStaging(&chunks.back());
    for (size_t c = 0; c < chunk_size && i < num_keys; ++c, ++i) {
      const uint64_t* key = keys.data() + i * key_words;
      uint32_t parent = static_cast<uint32_t>(staged % serial.size());
      GlobalNode move{static_cast<int>(staged), 0};
      sharded.Stage(&chunks.back(), key, aux_of(key), parent, move,
                    serial.KeyOf(parent));
      auto r = serial.Intern(key, parent, move);
      if (r.inserted) {
        std::memcpy(serial.MutableAuxOf(r.id), aux_of(key),
                    key_words * sizeof(uint64_t));
      }
      ++staged;
    }
  }
  sharded.CommitStaged(&chunks, chunks.size(), &pool);

  ASSERT_EQ(serial.size(), sharded.size());
  ShardedStateStore::KeyDecodeCache decode;
  for (uint32_t id = 0; id < serial.size(); ++id) {
    ASSERT_EQ(std::memcmp(serial.KeyOf(id), sharded.KeyView(id, &decode),
                          key_words * sizeof(uint64_t)),
              0)
        << "id " << id;
    ASSERT_EQ(std::memcmp(serial.AuxOf(id), sharded.AuxOf(id),
                          key_words * sizeof(uint64_t)),
              0)
        << "id " << id;
    ASSERT_EQ(serial.ParentOf(id), sharded.ParentOf(id)) << "id " << id;
    ASSERT_EQ(serial.MoveOf(id), sharded.MoveOf(id)) << "id " << id;
  }
}

TEST(DeltaStoreTest, StagedCommitMatchesSerialIntern) {
  const int kKeyWords = 3;
  Rng rng(2024);
  const size_t kNumKeys = 4000;
  std::vector<uint64_t> keys(kNumKeys * kKeyWords);
  // ~50% duplicate keys; word 1+ differ from word 0 so xor-deltas are
  // sparse but non-trivial.
  for (size_t i = 0; i < kNumKeys; ++i) {
    uint64_t v = rng.NextBelow(kNumKeys / 2);
    for (int w = 0; w < kKeyWords; ++w) {
      keys[i * kKeyWords + w] =
          (v + 1) * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(w) * 17;
    }
  }
  for (int shards : {1, 4, 16}) {
    for (size_t chunk : {7u, 64u, 4096u}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE(testing::Message() << "shards " << shards << " chunk "
                                        << chunk << " threads " << threads);
        CheckDeltaCommitMatchesSerial(kKeyWords, shards, chunk, threads,
                                      keys, kNumKeys);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Store level: a staged chunk survives the WriteStaging/ReadStaging
// round trip, in both encodings — committing the read-back chunks is
// id-identical to committing the originals.

void CheckSpillRoundTrip(const StoreOptions& options) {
  const int kw = 2;
  ShardedStateStore direct(kw, kw, 4, options);
  ShardedStateStore spilled(kw, kw, 4, options);
  ThreadPool pool(2);
  uint64_t root[2] = {0, 0};
  direct.InternRoot(root);
  spilled.InternRoot(root);

  Rng rng(7);
  const size_t kNumKeys = 500;
  std::vector<ShardedStateStore::Staging> chunks;
  std::vector<uint64_t> key(kw), aux(kw);
  size_t staged = 0;
  for (size_t i = 0; i < kNumKeys;) {
    chunks.emplace_back();
    direct.ResetStaging(&chunks.back());
    for (size_t c = 0; c < 7 && i < kNumKeys; ++c, ++i, ++staged) {
      uint64_t v = rng.NextBelow(kNumKeys / 2) + 1;
      for (int w = 0; w < kw; ++w) {
        key[w] = v * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(w);
        aux[w] = key[w] ^ 9;
      }
      direct.Stage(&chunks.back(), key.data(), aux.data(), 0,
                   GlobalNode{static_cast<int>(staged), 0}, root);
    }
  }

  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(direct.WriteStaging(file, chunk));
  }
  std::rewind(file);
  std::vector<ShardedStateStore::Staging> readback(chunks.size());
  for (auto& chunk : readback) {
    ASSERT_TRUE(spilled.ReadStaging(file, &chunk));
  }
  std::fclose(file);

  direct.CommitStaged(&chunks, chunks.size(), &pool);
  spilled.CommitStaged(&readback, readback.size(), &pool);

  ASSERT_EQ(direct.size(), spilled.size());
  ShardedStateStore::KeyDecodeCache da, db;
  for (uint32_t id = 0; id < direct.size(); ++id) {
    ASSERT_EQ(std::memcmp(direct.KeyView(id, &da), spilled.KeyView(id, &db),
                          kw * sizeof(uint64_t)),
              0)
        << "id " << id;
    ASSERT_EQ(direct.ParentOf(id), spilled.ParentOf(id)) << "id " << id;
    ASSERT_EQ(direct.MoveOf(id), spilled.MoveOf(id)) << "id " << id;
  }
}

TEST(FrontierSpillTest, StagingRoundTripIsIdIdenticalPlain) {
  CheckSpillRoundTrip(StoreOptions{});
}

TEST(FrontierSpillTest, StagingRoundTripIsIdIdenticalDelta) {
  CheckSpillRoundTrip(DeltaOptions());
}

// ---------------------------------------------------------------------
// Engine level: delta and spill runs must be bit-identical to the plain
// parallel engine — verdicts, visited/interned counts, and witnesses —
// at every thread count; compact must agree on verdicts (collisions at
// these sizes are ~2^-40) while marking itself non-exact.

struct ModeCase {
  const char* label;
  StoreOptions store;
  int threads;
};

std::vector<ModeCase> BitIdenticalModes() {
  return {
      {"delta/t1", DeltaOptions(), 1},
      {"delta/t2", DeltaOptions(), 2},
      {"delta/t4", DeltaOptions(), 4},
      {"delta+spill/t2", DeltaOptions(/*budget_mb=*/1), 2},
      {"plain+spill/t2", [] {
         StoreOptions o;
         o.mem_budget_mb = 1;
         return o;
       }(), 2},
  };
}

TEST(StoreModeCrossval, DeadlockAndSafetyBitIdenticalToPlain) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    const TransactionSystem& s = *sys->system;

    DeadlockCheckOptions dref;
    dref.engine = SearchEngine::kParallelSharded;
    dref.search_threads = 2;
    auto db = CheckDeadlockFreedom(s, dref);
    ASSERT_TRUE(db.ok());
    SafetyCheckOptions sref;
    sref.engine = SearchEngine::kParallelSharded;
    sref.search_threads = 2;
    auto sb = CheckSafeAndDeadlockFree(s, sref);
    auto cb = CheckSafety(s, sref);
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(cb.ok());

    for (const ModeCase& mode : BitIdenticalModes()) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " mode "
                                      << mode.label);
      DeadlockCheckOptions dopt = dref;
      dopt.store = mode.store;
      dopt.search_threads = mode.threads;
      auto da = CheckDeadlockFreedom(s, dopt);
      ASSERT_TRUE(da.ok());
      ASSERT_EQ(da->deadlock_free, db->deadlock_free);
      ASSERT_EQ(da->states_visited, db->states_visited);
      ASSERT_EQ(da->states_interned, db->states_interned);
      ASSERT_TRUE(da->exact);
      ASSERT_EQ(da->witness.has_value(), db->witness.has_value());
      if (da->witness.has_value()) {
        EXPECT_EQ(da->witness->schedule, db->witness->schedule);
        EXPECT_EQ(da->witness->prefix_nodes, db->witness->prefix_nodes);
      }

      SafetyCheckOptions sopt = sref;
      sopt.store = mode.store;
      sopt.search_threads = mode.threads;
      auto sa = CheckSafeAndDeadlockFree(s, sopt);
      ASSERT_TRUE(sa.ok());
      ASSERT_EQ(sa->holds, sb->holds);
      ASSERT_EQ(sa->states_visited, sb->states_visited);
      ASSERT_EQ(sa->states_interned, sb->states_interned);
      ASSERT_TRUE(sa->exact);
      ASSERT_EQ(sa->violation.has_value(), sb->violation.has_value());
      if (sa->violation.has_value()) {
        EXPECT_EQ(sa->violation->schedule, sb->violation->schedule);
        EXPECT_EQ(sa->violation->txn_cycle, sb->violation->txn_cycle);
      }

      auto ca = CheckSafety(s, sopt);
      ASSERT_TRUE(ca.ok());
      ASSERT_EQ(ca->holds, cb->holds);
      ASSERT_EQ(ca->states_visited, cb->states_visited);
      if (ca->violation.has_value() && cb->violation.has_value()) {
        EXPECT_EQ(ca->violation->schedule, cb->violation->schedule);
      }
    }
  }
}

// The reduced engine composes with delta (and spill): same reduced-space
// ids, counts, and violations as its plain-store run.
TEST(StoreModeCrossval, ReducedEngineComposesWithDelta) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomSystemOptions opts;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    const TransactionSystem& s = *sys->system;

    DeadlockCheckOptions ref;
    ref.engine = SearchEngine::kReduced;
    ref.search_threads = 2;
    auto b = CheckDeadlockFreedom(s, ref);
    ASSERT_TRUE(b.ok());
    for (uint64_t budget : {0ull, 1ull}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " budget "
                                      << budget);
      DeadlockCheckOptions fast = ref;
      fast.store = DeltaOptions(budget);
      auto a = CheckDeadlockFreedom(s, fast);
      ASSERT_TRUE(a.ok());
      ASSERT_EQ(a->deadlock_free, b->deadlock_free);
      ASSERT_EQ(a->states_visited, b->states_visited);
      ASSERT_EQ(a->sleep_set_pruned, b->sleep_set_pruned);
      ASSERT_EQ(a->witness.has_value(), b->witness.has_value());
      if (a->witness.has_value()) {
        EXPECT_EQ(a->witness->schedule, b->witness->schedule);
      }
    }
  }
}

// ---------------------------------------------------------------------
// A big enough search under a 1 MiB budget must actually hit the spill
// file — and still match the unbounded plain run exactly.

TEST(FrontierSpillTest, BudgetedFarmSpillsAndMatchesUnbounded) {
  ReplicatedFarmOptions fopts;
  fopts.workers = 12;  // (2.5*12+1)*2^12 = 126,976 reachable states.
  fopts.entities = 3;
  fopts.degree = 1;
  fopts.certified = true;
  auto sys = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(sys.ok());

  DeadlockCheckOptions plain;
  plain.engine = SearchEngine::kParallelSharded;
  plain.search_threads = 2;
  auto unbounded = CheckDeadlockFreedom(*sys->system, plain);
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(unbounded->deadlock_free);
  ASSERT_EQ(unbounded->spilled_levels, 0u);
  ASSERT_GT(unbounded->store_bytes, 1u << 20);  // The budget below binds.

  DeadlockCheckOptions budgeted = plain;
  budgeted.store = DeltaOptions(/*budget_mb=*/1);
  auto spilled = CheckDeadlockFreedom(*sys->system, budgeted);
  ASSERT_TRUE(spilled.ok());
  EXPECT_GT(spilled->spilled_levels, 0u);
  EXPECT_TRUE(spilled->deadlock_free);
  EXPECT_EQ(spilled->states_visited, unbounded->states_visited);
  EXPECT_EQ(spilled->states_interned, unbounded->states_interned);
  // Delta keys must be strictly smaller than plain keys at this scale.
  EXPECT_LT(spilled->arena_bytes, unbounded->arena_bytes);
}

// ---------------------------------------------------------------------
// Hash compaction: verdicts agree (collision odds ~n^2/2^65), reports
// are marked non-exact with a positive collision bound, witnesses stay
// concrete, and retiring expanded levels shrinks the resident arena.

TEST(CompactModeTest, CertifiedFarmAgreesAndReportsBound) {
  ReplicatedFarmOptions fopts;
  fopts.workers = 8;  // (2.5*8+1)*2^8 = 5376 reachable states.
  fopts.entities = 3;
  fopts.degree = 1;
  fopts.certified = true;
  auto sys = GenerateReplicatedFarm(fopts);
  ASSERT_TRUE(sys.ok());

  DeadlockCheckOptions plain;
  plain.engine = SearchEngine::kParallelSharded;
  plain.search_threads = 2;
  auto b = CheckDeadlockFreedom(*sys->system, plain);
  ASSERT_TRUE(b.ok());

  DeadlockCheckOptions compact = plain;
  compact.store = CompactOptions();
  auto a = CheckDeadlockFreedom(*sys->system, compact);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->deadlock_free, b->deadlock_free);
  EXPECT_EQ(a->states_visited, b->states_visited);
  EXPECT_EQ(a->states_interned, b->states_interned);
  EXPECT_FALSE(a->exact);
  EXPECT_GT(a->fingerprint_collision_bound, 0.0);
  EXPECT_LT(a->fingerprint_collision_bound, 1e-6);
  EXPECT_TRUE(b->exact);
  // Retiring expanded levels keeps only the frontier resident: the
  // compacted arena must be a small fraction of the full one.
  EXPECT_LT(a->arena_bytes, b->arena_bytes / 4);
}

TEST(CompactModeTest, RefutedRingKeepsConcreteWitness) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  DeadlockCheckOptions plain;
  plain.engine = SearchEngine::kParallelSharded;
  plain.search_threads = 2;
  auto b = CheckDeadlockFreedom(*ring->system, plain);
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(b->deadlock_free);

  DeadlockCheckOptions compact = plain;
  compact.store = CompactOptions();
  auto a = CheckDeadlockFreedom(*ring->system, compact);
  ASSERT_TRUE(a.ok());
  ASSERT_FALSE(a->deadlock_free);
  EXPECT_FALSE(a->exact);
  ASSERT_TRUE(a->witness.has_value());
  EXPECT_EQ(a->witness->schedule, b->witness->schedule);
  EXPECT_EQ(a->witness->prefix_nodes, b->witness->prefix_nodes);
}

TEST(CompactModeTest, SafetyCheckerAgreesAndMarksNonExact) {
  RandomSystemOptions opts;
  opts.num_transactions = 3;
  opts.entities_per_txn = 2;
  opts.seed = 3;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  SafetyCheckOptions plain;
  plain.engine = SearchEngine::kParallelSharded;
  plain.search_threads = 2;
  auto b = CheckSafeAndDeadlockFree(*sys->system, plain);
  ASSERT_TRUE(b.ok());
  SafetyCheckOptions compact = plain;
  compact.store = CompactOptions();
  auto a = CheckSafeAndDeadlockFree(*sys->system, compact);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->holds, b->holds);
  EXPECT_EQ(a->states_visited, b->states_visited);
  EXPECT_FALSE(a->exact);
  if (a->violation.has_value() && b->violation.has_value()) {
    EXPECT_EQ(a->violation->schedule, b->violation->schedule);
  }
}

// ---------------------------------------------------------------------
// Mode/engine conflicts fail fast with InvalidArgument.

TEST(StoreModeValidation, SerialEnginesRejectMemoryModes) {
  auto ring = GenerateRingSystem(3);
  ASSERT_TRUE(ring.ok());
  for (auto engine :
       {SearchEngine::kIncremental, SearchEngine::kNaiveReference}) {
    DeadlockCheckOptions d;
    d.engine = engine;
    d.store = DeltaOptions();
    EXPECT_EQ(CheckDeadlockFreedom(*ring->system, d).status().code(),
              StatusCode::kInvalidArgument);
    DeadlockCheckOptions b;
    b.engine = engine;
    b.store.mem_budget_mb = 64;
    EXPECT_EQ(CheckDeadlockFreedom(*ring->system, b).status().code(),
              StatusCode::kInvalidArgument);
    SafetyCheckOptions s;
    s.engine = engine;
    s.store = DeltaOptions();
    EXPECT_EQ(CheckSafety(*ring->system, s).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(StoreModeValidation, ReducedEngineRejectsCompaction) {
  auto ring = GenerateRingSystem(3);
  ASSERT_TRUE(ring.ok());
  DeadlockCheckOptions d;
  d.engine = SearchEngine::kReduced;
  d.store = CompactOptions();
  EXPECT_EQ(CheckDeadlockFreedom(*ring->system, d).status().code(),
            StatusCode::kInvalidArgument);
  SafetyCheckOptions s;
  s.engine = SearchEngine::kReduced;
  s.store = CompactOptions();
  EXPECT_EQ(CheckSafeAndDeadlockFree(*ring->system, s).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Debug-build guard rails (satellite of ISSUE 6): arena-epoch checks on
// KeyOf/AuxOf pointers and the retired-state / delta-KeyOf footguns
// abort under WYDB_DCHECK instead of reading reallocated memory.

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)

TEST(ArenaEpochDeathTest, StalePointerAfterInternAborts) {
  StateStore store(/*key_words=*/1);
  uint64_t k = 7;
  uint32_t id = store.Intern(&k).id;
  ConstArenaPtr key = store.KeyOf(id);
  for (uint64_t i = 0; i < 200; ++i) {  // Force arena growth.
    uint64_t fresh = 1000 + i;
    store.Intern(&fresh);
  }
  EXPECT_DEATH({ volatile uint64_t v = key[0]; (void)v; }, "stale");
}

TEST(ArenaEpochDeathTest, RetiredStateAccessAborts) {
  ShardedStateStore store(1, 1, 2, CompactOptions());
  ThreadPool pool(1);
  uint64_t k = 0;
  uint32_t root = store.InternRoot(&k);
  std::vector<ShardedStateStore::Staging> chunks(1);
  store.ResetStaging(&chunks[0]);
  k = 1;
  uint64_t aux = 0;
  store.Stage(&chunks[0], &k, &aux, root, GlobalNode{0, 0});
  store.CommitStaged(&chunks, 1, &pool);
  store.RetireExpanded();
  EXPECT_DEATH({ volatile uint64_t v = store.AuxOf(root)[0]; (void)v; },
               "retired");
}

TEST(ArenaEpochDeathTest, KeyOfOnDeltaStoreAborts) {
  ShardedStateStore store(1, 0, 2, DeltaOptions());
  uint64_t k = 0;
  uint32_t root = store.InternRoot(&k);
  EXPECT_DEATH({ volatile uint64_t v = store.KeyOf(root)[0]; (void)v; },
               "KeyView");
}

#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace wydb
