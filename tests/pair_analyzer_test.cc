// Tests for the Theorem 3 pair test and its O(n^3) minimal-prefix
// counterpart, cross-validated against the exact Lemma 1 oracle.
#include <gtest/gtest.h>

#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "gen/txn_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

using testutil::MakeDb;
using testutil::MakeSeq;
using testutil::MakeSpreadDb;
using testutil::MakeSystem;

TEST(PairAnalyzerTest, DisjointPairPasses) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ux"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Ly", "Uy"});
  auto v = CheckPairTheorem3(t1, t2);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->safe_and_deadlock_free);
  EXPECT_EQ(v->dominating_entity, kInvalidEntity);
}

TEST(PairAnalyzerTest, SingleSharedEntityPasses) {
  auto db = MakeDb({{"s1", {"x", "y", "z"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Lx", "Lz", "Ux", "Uz"});
  auto v = CheckPairTheorem3(t1, t2);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->safe_and_deadlock_free);
  EXPECT_EQ(v->dominating_entity, db->FindEntity("x"));
}

TEST(PairAnalyzerTest, OppositeOrderFailsCondition1) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"});
  auto v = CheckPairTheorem3(t1, t2);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->safe_and_deadlock_free);
  EXPECT_EQ(v->failure, PairFailure::kNoDominatingEntity);
  EXPECT_FALSE(v->explanation.empty());
}

TEST(PairAnalyzerTest, EarlyUnlockFailsCondition2) {
  // x dominates, but y is uncovered: x is unlocked before Ly in both, so
  // nothing locked before Ly stays held across it.
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ux", "Ly", "Uy"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Lx", "Ux", "Ly", "Uy"});
  auto v = CheckPairTheorem3(t1, t2);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->safe_and_deadlock_free);
  EXPECT_EQ(v->failure, PairFailure::kUncoveredEntity);
  EXPECT_EQ(v->offending_entity, db->FindEntity("y"));
}

TEST(PairAnalyzerTest, TwoPhaseSameOrderPasses) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}, {"s3", {"z"}}});
  Transaction t1 =
      MakeSeq(db.get(), "T1", {"Lx", "Ly", "Lz", "Uz", "Uy", "Ux"});
  Transaction t2 =
      MakeSeq(db.get(), "T2", {"Lx", "Lz", "Ly", "Uy", "Uz", "Ux"});
  auto v = CheckPairTheorem3(t1, t2);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->safe_and_deadlock_free);
  EXPECT_EQ(v->dominating_entity, db->FindEntity("x"));
}

TEST(PairAnalyzerTest, DifferentDatabasesRejected) {
  auto db1 = MakeDb({{"s1", {"x"}}});
  auto db2 = MakeDb({{"s1", {"x"}}});
  Transaction t1 = MakeSeq(db1.get(), "T1", {"Lx", "Ux"});
  Transaction t2 = MakeSeq(db2.get(), "T2", {"Lx", "Ux"});
  EXPECT_FALSE(CheckPairTheorem3(t1, t2).ok());
  EXPECT_FALSE(CheckPairMinimalPrefix(t1, t2).ok());
}

TEST(PairAnalyzerTest, FindDominatingEntityUnique) {
  auto db = MakeDb({{"s1", {"x", "y"}}});
  Transaction t1 = MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"});
  Transaction t2 = MakeSeq(db.get(), "T2", {"Lx", "Ly", "Uy", "Ux"});
  EXPECT_EQ(FindDominatingEntity(t1, t2), db->FindEntity("x"));
}

// The remark after Theorem 3: for a FIXED y the one-sided equivalence
// fails, but the conjunction over all y agrees — so the O(n^2) and O(n^3)
// tests must produce the same verdict even when per-entity diagnoses
// differ.
TEST(PairAnalyzerTest, MinimalPrefixAgreesOnCraftedCases) {
  auto db = MakeDb({{"s1", {"x"}}, {"s2", {"y"}}, {"s3", {"z"}}});
  std::vector<std::vector<std::string>> shapes = {
      {"Lx", "Ly", "Lz", "Uz", "Uy", "Ux"},
      {"Lx", "Ly", "Ux", "Lz", "Uy", "Uz"},
      {"Lx", "Ux", "Ly", "Lz", "Uy", "Uz"},
      {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"},
  };
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); ++j) {
      Transaction t1 = MakeSeq(db.get(), "T1", shapes[i]);
      Transaction t2 = MakeSeq(db.get(), "T2", shapes[j]);
      auto fast = CheckPairTheorem3(t1, t2);
      auto slow = CheckPairMinimalPrefix(t1, t2);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(slow.ok());
      EXPECT_EQ(fast->safe_and_deadlock_free, slow->safe_and_deadlock_free)
          << "shapes " << i << "," << j;
    }
  }
}

// Ground truth: both polynomial tests agree with the exponential Lemma 1
// oracle on random distributed pairs.
TEST(PairAnalyzerProperty, AgreesWithExactOracle) {
  int failures_seen = 0, passes_seen = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    auto db = MakeUniformDatabase(2, 2);
    TxnGenOptions topts;
    topts.entities = SampleEntities(*db, 3, &rng);
    topts.extra_arc_prob = 0.2;
    auto t1 = GenerateTransaction(db.get(), "T1", topts, &rng);
    ASSERT_TRUE(t1.ok());
    TxnGenOptions topts2;
    topts2.entities = SampleEntities(*db, 3, &rng);
    topts2.extra_arc_prob = 0.2;
    auto t2 = GenerateTransaction(db.get(), "T2", topts2, &rng);
    ASSERT_TRUE(t2.ok());

    auto fast = CheckPairTheorem3(*t1, *t2);
    auto slow = CheckPairMinimalPrefix(*t1, *t2);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());

    std::vector<Transaction> txns;
    txns.push_back(std::move(*t1));
    txns.push_back(std::move(*t2));
    TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
    auto oracle = CheckSafeAndDeadlockFree(sys);
    ASSERT_TRUE(oracle.ok());

    EXPECT_EQ(fast->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
    EXPECT_EQ(slow->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
    (oracle->holds ? passes_seen : failures_seen)++;
  }
  // The random workload must exercise both outcomes to mean anything.
  EXPECT_GT(failures_seen, 0);
  EXPECT_GT(passes_seen, 0);
}

// Theorem 3 on genuinely partial orders (entities at distinct sites, no
// chaining): cross-validated against the oracle.
TEST(PairAnalyzerProperty, AgreesWithOracleOnPartialOrders) {
  for (uint64_t seed = 100; seed <= 140; ++seed) {
    Rng rng(seed);
    auto db = MakeUniformDatabase(4, 1);  // Every entity at its own site.
    TxnGenOptions topts;
    topts.entities = SampleEntities(*db, 3, &rng);
    topts.extra_arc_prob = 0.1;
    auto t1 = GenerateTransaction(db.get(), "T1", topts, &rng);
    TxnGenOptions topts2;
    topts2.entities = SampleEntities(*db, 3, &rng);
    topts2.extra_arc_prob = 0.1;
    auto t2 = GenerateTransaction(db.get(), "T2", topts2, &rng);
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());

    auto fast = CheckPairTheorem3(*t1, *t2);
    ASSERT_TRUE(fast.ok());

    std::vector<Transaction> txns;
    txns.push_back(std::move(*t1));
    txns.push_back(std::move(*t2));
    TransactionSystem sys = MakeSystem(db.get(), std::move(txns));
    auto oracle = CheckSafeAndDeadlockFree(sys);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(fast->safe_and_deadlock_free, oracle->holds)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace wydb
