// Tests for the workload generators.
#include <gtest/gtest.h>

#include "analysis/multi_analyzer.h"
#include "analysis/pair_analyzer.h"
#include "analysis/safety_checker.h"
#include "gen/system_gen.h"
#include "gen/txn_gen.h"

namespace wydb {
namespace {

TEST(TxnGenTest, GeneratesWellFormedTransactions) {
  auto db = MakeUniformDatabase(3, 3);
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    TxnGenOptions opts;
    opts.entities = SampleEntities(*db, 4, &rng);
    opts.extra_arc_prob = 0.3;
    auto t = GenerateTransaction(db.get(), "T", opts, &rng);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(t->entities().size(), 4u);
    EXPECT_EQ(t->num_steps(), 8);
  }
}

TEST(TxnGenTest, TwoPhaseHasAllLocksBeforeAllUnlocks) {
  auto db = MakeUniformDatabase(2, 3);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    TxnGenOptions opts;
    opts.entities = SampleEntities(*db, 3, &rng);
    opts.two_phase = true;
    auto t = GenerateTransaction(db.get(), "T", opts, &rng);
    ASSERT_TRUE(t.ok());
    // Two-phase in the partial-order sense: every Lock strictly precedes
    // every Unlock (so every linear extension is a two-phase sequence).
    for (NodeId u = 0; u < t->num_steps(); ++u) {
      if (t->step(u).kind != StepKind::kLock) continue;
      for (NodeId v = 0; v < t->num_steps(); ++v) {
        if (t->step(v).kind != StepKind::kUnlock) continue;
        EXPECT_TRUE(t->Precedes(u, v))
            << t->StepLabel(u) << " vs " << t->StepLabel(v);
      }
    }
  }
}

TEST(TxnGenTest, DominatingFirstHoldsToEnd) {
  auto db = MakeUniformDatabase(2, 3);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    TxnGenOptions opts;
    opts.entities = SampleEntities(*db, 3, &rng);
    opts.dominating_first = true;
    opts.hold_first_to_end = true;
    auto t = GenerateTransaction(db.get(), "T", opts, &rng);
    ASSERT_TRUE(t.ok());
    EntityId first = opts.entities[0];
    NodeId lf = t->LockNode(first);
    NodeId uf = t->UnlockNode(first);
    for (NodeId v = 0; v < t->num_steps(); ++v) {
      if (v != lf) EXPECT_TRUE(t->Precedes(lf, v));
      if (v != uf) EXPECT_TRUE(t->Precedes(v, uf));
    }
  }
}

TEST(TxnGenTest, EmptyEntityListRejected) {
  auto db = MakeUniformDatabase(1, 1);
  Rng rng(1);
  TxnGenOptions opts;
  EXPECT_FALSE(GenerateTransaction(db.get(), "T", opts, &rng).ok());
}

TEST(TxnGenTest, SampleEntitiesBounded) {
  auto db = MakeUniformDatabase(2, 2);
  Rng rng(1);
  EXPECT_EQ(SampleEntities(*db, 3, &rng).size(), 3u);
  EXPECT_EQ(SampleEntities(*db, 99, &rng).size(), 4u);  // Clamped.
}

TEST(TxnGenTest, UniformDatabaseShape) {
  auto db = MakeUniformDatabase(3, 4);
  EXPECT_EQ(db->num_sites(), 3);
  EXPECT_EQ(db->num_entities(), 12);
  for (EntityId e = 0; e < 12; ++e) {
    EXPECT_EQ(db->SiteOf(e), e / 4);
  }
}

TEST(SystemGenTest, RandomSystemShape) {
  RandomSystemOptions opts;
  opts.num_transactions = 4;
  opts.entities_per_txn = 2;
  auto sys = GenerateRandomSystem(opts);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys->system->num_transactions(), 4);
  EXPECT_EQ(&sys->system->db(), sys->db.get());
}

TEST(SystemGenTest, DeterministicForSeed) {
  RandomSystemOptions opts;
  opts.seed = 42;
  auto a = GenerateRandomSystem(opts);
  auto b = GenerateRandomSystem(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->system->num_transactions(), b->system->num_transactions());
  for (int i = 0; i < a->system->num_transactions(); ++i) {
    EXPECT_EQ(a->system->txn(i).DebugString(),
              b->system->txn(i).DebugString());
  }
}

TEST(SystemGenTest, SafeSystemAllPairsPassTheorem3) {
  SafeSystemOptions opts;
  opts.num_transactions = 5;
  opts.entities_per_txn = 3;
  auto sys = GenerateSafeSystem(opts);
  ASSERT_TRUE(sys.ok());
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      auto v = CheckPairTheorem3(sys->system->txn(i), sys->system->txn(j));
      ASSERT_TRUE(v.ok());
      EXPECT_TRUE(v->safe_and_deadlock_free) << i << "," << j;
    }
  }
}

TEST(SystemGenTest, RingSystemShape) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  EXPECT_EQ(ring->system->num_transactions(), 4);
  // Consecutive transactions share exactly one entity; non-consecutive
  // share none.
  EXPECT_EQ(ring->system->SharedEntities(0, 1).size(), 1u);
  EXPECT_EQ(ring->system->SharedEntities(0, 2).size(), 0u);
  EXPECT_FALSE(GenerateRingSystem(1).ok());
}

TEST(SystemGenTest, ChordedCycleIncreasesCycleCount) {
  auto plain = GenerateChordedCycleSystem(6, 0, 1);
  auto chorded = GenerateChordedCycleSystem(6, 3, 1);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(chorded.ok());
  auto cycles_of = [](const TransactionSystem& sys) {
    return sys.InteractionGraph().SimpleCycles().size();
  };
  EXPECT_EQ(cycles_of(*plain->system), 1u);
  EXPECT_GT(cycles_of(*chorded->system), 1u);
}

TEST(SystemGenTest, ReadMostlyFarmIsCertifiedAndMostlyShared) {
  ReadMostlyFarmOptions opts;
  opts.workers = 3;
  opts.read_entities = 4;
  auto farm = GenerateReadMostlyFarm(opts);
  ASSERT_TRUE(farm.ok());
  const TransactionSystem& s = *farm->system;
  EXPECT_EQ(s.num_transactions(), 3);

  // At least half the lock steps are shared (here: 4 of 5 per worker).
  int locks = 0, shared = 0;
  for (int i = 0; i < s.num_transactions(); ++i) {
    const Transaction& t = s.txn(i);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (t.step(v).kind != StepKind::kLock) continue;
      ++locks;
      if (t.step(v).mode == LockMode::kShared) ++shared;
    }
  }
  EXPECT_GE(2 * shared, locks);

  // Certified by Theorem 4 for any worker count, and by the exact oracle.
  auto thm4 = CheckSystemSafeAndDeadlockFree(s);
  ASSERT_TRUE(thm4.ok());
  EXPECT_TRUE(thm4->safe_and_deadlock_free);
  auto oracle = CheckSafeAndDeadlockFree(s);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->holds);
}

TEST(SystemGenTest, ReadMostlyFarmSharedFractionKnob) {
  // The knob converts S reads to X reads without changing the shape or
  // the verdict: the chain is certified at every fraction.
  for (double fraction : {0.0, 0.5, 1.0}) {
    ReadMostlyFarmOptions opts;
    opts.workers = 2;
    opts.read_entities = 4;
    opts.shared_fraction = fraction;
    auto farm = GenerateReadMostlyFarm(opts);
    ASSERT_TRUE(farm.ok());
    const TransactionSystem& s = *farm->system;
    int shared = 0;
    const Transaction& t = s.txn(0);
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      if (t.step(v).kind == StepKind::kLock &&
          t.step(v).mode == LockMode::kShared) {
        ++shared;
      }
    }
    EXPECT_EQ(shared, static_cast<int>(fraction * 4 + 0.5))
        << "fraction=" << fraction;
    auto thm4 = CheckSystemSafeAndDeadlockFree(s);
    ASSERT_TRUE(thm4.ok());
    EXPECT_TRUE(thm4->safe_and_deadlock_free) << "fraction=" << fraction;
  }
  // Bad shapes are rejected.
  ReadMostlyFarmOptions bad;
  bad.workers = 0;
  EXPECT_FALSE(GenerateReadMostlyFarm(bad).ok());
}

TEST(SystemGenTest, ReadMostlyFarmReducedSearchBeatsDemotion) {
  // The acceptance bar for the S/X work: on the read-mostly farm the
  // reduced engine interns STRICTLY fewer states than on the farm's
  // all-X demotion (shared_fraction = 0 — the same system with every S
  // demoted), because S moves on S-by-all entities are always-invisible.
  ReadMostlyFarmOptions opts;
  opts.workers = 3;
  opts.read_entities = 3;
  auto farm = GenerateReadMostlyFarm(opts);
  ReadMostlyFarmOptions demoted_opts = opts;
  demoted_opts.shared_fraction = 0.0;
  auto demoted = GenerateReadMostlyFarm(demoted_opts);
  ASSERT_TRUE(farm.ok());
  ASSERT_TRUE(demoted.ok());

  SafetyCheckOptions so;
  so.engine = SearchEngine::kReduced;
  so.search_threads = 1;
  auto shared_run = CheckSafeAndDeadlockFree(*farm->system, so);
  auto demoted_run = CheckSafeAndDeadlockFree(*demoted->system, so);
  ASSERT_TRUE(shared_run.ok());
  ASSERT_TRUE(demoted_run.ok());
  EXPECT_TRUE(shared_run->holds);
  EXPECT_TRUE(demoted_run->holds);
  EXPECT_LT(shared_run->states_interned, demoted_run->states_interned);
  EXPECT_LT(shared_run->states_visited, demoted_run->states_visited);
}

}  // namespace
}  // namespace wydb
