// StateStore unit tests plus the cross-validation property suite: the
// incremental expansion/cycle engine must be verdict- and count-identical
// to the retained naive reference on random small systems.
#include "core/state_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "core/state_space.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

// ---------------------------------------------------------------------
// StateStore basics.

TEST(StateStoreTest, InternDeduplicatesAndAssignsDenseIds) {
  StateStore store(/*key_words=*/2);
  uint64_t a[2] = {1, 2};
  uint64_t b[2] = {1, 3};
  auto ra = store.Intern(a);
  auto rb = store.Intern(b);
  EXPECT_TRUE(ra.inserted);
  EXPECT_TRUE(rb.inserted);
  EXPECT_EQ(ra.id, 0u);
  EXPECT_EQ(rb.id, 1u);
  auto ra2 = store.Intern(a);
  EXPECT_FALSE(ra2.inserted);
  EXPECT_EQ(ra2.id, ra.id);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Find(a), ra.id);
  EXPECT_EQ(store.Find(b), rb.id);
  uint64_t absent[2] = {9, 9};
  EXPECT_EQ(store.Find(absent), StateStore::kNoId);
}

TEST(StateStoreTest, KeysSurviveArenaGrowthAndRehash) {
  StateStore store(/*key_words=*/1);
  const int kCount = 5000;  // Far beyond the initial table size.
  for (int i = 0; i < kCount; ++i) {
    uint64_t key = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    auto r = store.Intern(&key);
    ASSERT_TRUE(r.inserted);
    ASSERT_EQ(r.id, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(store.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    uint64_t key = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    auto r = store.Intern(&key);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.id, static_cast<uint32_t>(i));
    EXPECT_EQ(*store.KeyOf(r.id), key);
  }
}

TEST(StateStoreTest, AppendSkipsDeduplication) {
  StateStore store(/*key_words=*/1);
  uint64_t key = 42;
  uint32_t a = store.Append(&key);
  uint32_t b = store.Append(&key);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStoreTest, AuxIsZeroInitializedAndMutable) {
  StateStore store(/*key_words=*/1, /*aux_words=*/3);
  uint64_t key = 7;
  uint32_t id = store.Intern(&key).id;
  for (int w = 0; w < 3; ++w) EXPECT_EQ(store.AuxOf(id)[w], 0u);
  store.MutableAuxOf(id)[1] = 0xDEADBEEF;
  // Force arena growth, then re-check.
  for (int i = 0; i < 100; ++i) {
    uint64_t k = 1000 + i;
    store.Intern(&k);
  }
  EXPECT_EQ(store.AuxOf(id)[1], 0xDEADBEEFull);
}

TEST(StateStoreTest, PathFromRootFollowsParentLinks) {
  StateStore store(/*key_words=*/1);
  uint64_t k0 = 0, k1 = 1, k2 = 2;
  uint32_t root = store.Intern(&k0).id;
  uint32_t a = store.Intern(&k1, root, GlobalNode{0, 5}).id;
  uint32_t b = store.Intern(&k2, a, GlobalNode{1, 7}).id;
  EXPECT_TRUE(store.PathFromRoot(root).empty());
  std::vector<GlobalNode> path = store.PathFromRoot(b);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (GlobalNode{0, 5}));
  EXPECT_EQ(path[1], (GlobalNode{1, 7}));
}

// ---------------------------------------------------------------------
// Incremental expansion vs the naive API, along random walks.

TEST(IncrementalExpansionTest, MatchesNaiveAlongRandomWalks) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    StateSpace space(&*sys->system);

    const int kw = space.words_per_state();
    const int aw = space.aux_words();
    std::vector<uint64_t> state(kw), aux(aw);
    std::vector<uint64_t> next_state(kw), next_aux(aw);
    std::vector<uint64_t> aux_check(aw);
    space.InitRoot(state.data(), aux.data());

    ExecState naive = space.EmptyState();
    Rng rng(seed * 77 + 3);
    for (int step = 0; step < 64; ++step) {
      // Incremental and naive move generation agree, in the same order.
      std::vector<GlobalNode> inc_moves;
      space.ExpandInto(aux.data(), &inc_moves);
      std::vector<GlobalNode> naive_moves = space.LegalMoves(naive);
      ASSERT_EQ(inc_moves, naive_moves) << "seed " << seed;
      if (naive_moves.empty()) break;

      GlobalNode g = naive_moves[rng.NextBelow(naive_moves.size())];
      space.ApplyInto(state.data(), aux.data(), g, next_state.data(),
                      next_aux.data());
      naive = space.Apply(naive, g);
      ASSERT_EQ(std::memcmp(next_state.data(), naive.words.data(),
                            kw * sizeof(uint64_t)),
                0);
      // The incrementally maintained cache equals a from-scratch rebuild.
      space.InitAux(next_state.data(), aux_check.data());
      ASSERT_EQ(std::memcmp(next_aux.data(), aux_check.data(),
                            aw * sizeof(uint64_t)),
                0)
          << "seed " << seed << " step " << step;
      state.swap(next_state);
      aux.swap(next_aux);
    }
  }
}

// ---------------------------------------------------------------------
// Cross-validation: the incremental engine is verdict- and count-identical
// to the naive reference on >= 100 random small systems.

struct CrossvalShape {
  int sites;
  int entities_per_site;
  int txns;
  int entities_per_txn;
  bool two_phase;
};

class EngineCrossval : public ::testing::TestWithParam<CrossvalShape> {};

TEST_P(EngineCrossval, DeadlockAndSafetyVerdictsAndCountsIdentical) {
  const CrossvalShape& shape = GetParam();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = shape.sites;
    opts.entities_per_site = shape.entities_per_site;
    opts.num_transactions = shape.txns;
    opts.entities_per_txn = shape.entities_per_txn;
    opts.two_phase = shape.two_phase;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    const TransactionSystem& s = *sys->system;

    for (auto mode : {DeadlockDetectionMode::kStuckState,
                      DeadlockDetectionMode::kReductionGraph}) {
      DeadlockCheckOptions fast;
      fast.mode = mode;
      DeadlockCheckOptions ref = fast;
      ref.engine = SearchEngine::kNaiveReference;
      auto a = CheckDeadlockFreedom(s, fast);
      auto b = CheckDeadlockFreedom(s, ref);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->deadlock_free, b->deadlock_free) << "seed " << seed;
      ASSERT_EQ(a->states_visited, b->states_visited) << "seed " << seed;
      ASSERT_EQ(a->witness.has_value(), b->witness.has_value());
      if (a->witness.has_value()) {
        EXPECT_EQ(a->witness->schedule, b->witness->schedule);
        EXPECT_EQ(a->witness->prefix_nodes, b->witness->prefix_nodes);
        EXPECT_EQ(a->witness->reduction_cycle, b->witness->reduction_cycle);
      }
    }

    {
      SafetyCheckOptions fast;
      SafetyCheckOptions ref;
      ref.engine = SearchEngine::kNaiveReference;
      auto a = CheckSafeAndDeadlockFree(s, fast);
      auto b = CheckSafeAndDeadlockFree(s, ref);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->holds, b->holds) << "seed " << seed;
      ASSERT_EQ(a->states_visited, b->states_visited) << "seed " << seed;
      ASSERT_EQ(a->violation.has_value(), b->violation.has_value());
      if (a->violation.has_value()) {
        EXPECT_EQ(a->violation->schedule, b->violation->schedule);
        EXPECT_EQ(a->violation->txn_cycle, b->violation->txn_cycle);
      }

      auto sa = CheckSafety(s, fast);
      auto sb = CheckSafety(s, ref);
      ASSERT_TRUE(sa.ok());
      ASSERT_TRUE(sb.ok());
      ASSERT_EQ(sa->holds, sb->holds) << "seed " << seed;
      ASSERT_EQ(sa->states_visited, sb->states_visited) << "seed " << seed;
      if (sa->violation.has_value() && sb->violation.has_value()) {
        EXPECT_EQ(sa->violation->schedule, sb->violation->schedule);
        EXPECT_EQ(sa->violation->txn_cycle, sb->violation->txn_cycle);
      }
    }
  }
}

// 5 shapes x 30 seeds = 150 random systems.
INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineCrossval,
    ::testing::Values(CrossvalShape{2, 2, 3, 2, false},
                      CrossvalShape{1, 3, 2, 3, false},
                      CrossvalShape{3, 2, 2, 3, true},
                      CrossvalShape{1, 2, 4, 2, false},
                      CrossvalShape{2, 3, 3, 3, true}));

// The memoization ablation must agree between engines as well (witnesses
// excluded: without memoization the two engines legitimately record
// different — both valid — parent paths).
TEST(EngineCrossvalNoMemo, CountsIdenticalWithoutMemoization) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomSystemOptions opts;
    opts.num_transactions = 2;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    DeadlockCheckOptions fast;
    fast.memoize = false;
    fast.max_states = 2'000'000;
    DeadlockCheckOptions ref = fast;
    ref.engine = SearchEngine::kNaiveReference;
    auto a = CheckDeadlockFreedom(*sys->system, fast);
    auto b = CheckDeadlockFreedom(*sys->system, ref);
    ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      continue;
    }
    EXPECT_EQ(a->deadlock_free, b->deadlock_free) << "seed " << seed;
    EXPECT_EQ(a->states_visited, b->states_visited) << "seed " << seed;
  }
}

// The benchmark workload generators: verdicts are known by construction
// and the engines must agree on them (and on the state counts).
TEST(EngineCrossval, BenchWorkloadGeneratorsAgree) {
  auto grid = GenerateDisjointGridSystem(3, 2);
  auto chain = GenerateSharedChainSystem(4);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(chain.ok());
  for (const TransactionSystem* s : {grid->system.get(),
                                     chain->system.get()}) {
    DeadlockCheckOptions dopts;
    auto da = CheckDeadlockFreedom(*s, dopts);
    dopts.engine = SearchEngine::kNaiveReference;
    auto db = CheckDeadlockFreedom(*s, dopts);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE(da->deadlock_free);
    EXPECT_EQ(da->states_visited, db->states_visited);

    SafetyCheckOptions sopts;
    auto sa = CheckSafeAndDeadlockFree(*s, sopts);
    sopts.engine = SearchEngine::kNaiveReference;
    auto sb = CheckSafeAndDeadlockFree(*s, sopts);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_TRUE(sa->holds);
    EXPECT_EQ(sa->states_visited, sb->states_visited);
  }
}

// Budget exhaustion surfaces identically from both engines.
TEST(EngineCrossval, ResourceExhaustionMatches) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  DeadlockCheckOptions fast;
  fast.max_states = 3;
  DeadlockCheckOptions ref = fast;
  ref.engine = SearchEngine::kNaiveReference;
  auto a = CheckDeadlockFreedom(*ring->system, fast);
  auto b = CheckDeadlockFreedom(*ring->system, ref);
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace wydb
