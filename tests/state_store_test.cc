// StateStore unit tests plus the cross-validation property suite: the
// incremental expansion/cycle engine must be verdict- and count-identical
// to the retained naive reference on random small systems.
#include "core/state_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/state_space.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

// ---------------------------------------------------------------------
// StateStore basics.

TEST(StateStoreTest, InternDeduplicatesAndAssignsDenseIds) {
  StateStore store(/*key_words=*/2);
  uint64_t a[2] = {1, 2};
  uint64_t b[2] = {1, 3};
  auto ra = store.Intern(a);
  auto rb = store.Intern(b);
  EXPECT_TRUE(ra.inserted);
  EXPECT_TRUE(rb.inserted);
  EXPECT_EQ(ra.id, 0u);
  EXPECT_EQ(rb.id, 1u);
  auto ra2 = store.Intern(a);
  EXPECT_FALSE(ra2.inserted);
  EXPECT_EQ(ra2.id, ra.id);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Find(a), ra.id);
  EXPECT_EQ(store.Find(b), rb.id);
  uint64_t absent[2] = {9, 9};
  EXPECT_EQ(store.Find(absent), StateStore::kNoId);
}

TEST(StateStoreTest, KeysSurviveArenaGrowthAndRehash) {
  StateStore store(/*key_words=*/1);
  const int kCount = 5000;  // Far beyond the initial table size.
  for (int i = 0; i < kCount; ++i) {
    uint64_t key = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    auto r = store.Intern(&key);
    ASSERT_TRUE(r.inserted);
    ASSERT_EQ(r.id, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(store.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    uint64_t key = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    auto r = store.Intern(&key);
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.id, static_cast<uint32_t>(i));
    EXPECT_EQ(*store.KeyOf(r.id), key);
  }
}

TEST(StateStoreTest, AppendSkipsDeduplication) {
  StateStore store(/*key_words=*/1);
  uint64_t key = 42;
  uint32_t a = store.Append(&key);
  uint32_t b = store.Append(&key);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StateStoreTest, AuxIsZeroInitializedAndMutable) {
  StateStore store(/*key_words=*/1, /*aux_words=*/3);
  uint64_t key = 7;
  uint32_t id = store.Intern(&key).id;
  for (int w = 0; w < 3; ++w) EXPECT_EQ(store.AuxOf(id)[w], 0u);
  store.MutableAuxOf(id)[1] = 0xDEADBEEF;
  // Force arena growth, then re-check.
  for (int i = 0; i < 100; ++i) {
    uint64_t k = 1000 + i;
    store.Intern(&k);
  }
  EXPECT_EQ(store.AuxOf(id)[1], 0xDEADBEEFull);
}

TEST(StateStoreTest, PathFromRootFollowsParentLinks) {
  StateStore store(/*key_words=*/1);
  uint64_t k0 = 0, k1 = 1, k2 = 2;
  uint32_t root = store.Intern(&k0).id;
  uint32_t a = store.Intern(&k1, root, GlobalNode{0, 5}).id;
  uint32_t b = store.Intern(&k2, a, GlobalNode{1, 7}).id;
  EXPECT_TRUE(store.PathFromRoot(root).empty());
  std::vector<GlobalNode> path = store.PathFromRoot(b);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], (GlobalNode{0, 5}));
  EXPECT_EQ(path[1], (GlobalNode{1, 7}));
}

// ---------------------------------------------------------------------
// ShardedStateStore: the staged batch commit must reproduce serial
// Intern ids, parent links, and first-visit semantics bit for bit, for
// any shard count, chunk split, and thread count.

// Stages `keys` (key_words-word keys with aux = key ^ 5) into `chunk_size`
// chunks and commits; returns nothing — asserts against a serial
// StateStore fed the same sequence.
void CheckStagedCommitMatchesSerial(int key_words, int shards,
                                    size_t chunk_size, int threads,
                                    const std::vector<uint64_t>& keys,
                                    size_t num_keys) {
  StateStore serial(key_words, key_words);
  ShardedStateStore sharded(key_words, key_words, shards);
  ThreadPool pool(threads);

  // Root: the first key, interned serially in both stores.
  std::vector<uint64_t> aux(key_words);
  auto aux_of = [&](const uint64_t* key) {
    for (int w = 0; w < key_words; ++w) aux[w] = key[w] ^ 5;
    return aux.data();
  };
  uint32_t root_a = serial.Intern(keys.data()).id;
  std::memcpy(serial.MutableAuxOf(root_a), aux_of(keys.data()),
              key_words * sizeof(uint64_t));
  uint32_t root_b = sharded.InternRoot(keys.data());
  std::memcpy(sharded.MutableAuxOf(root_b), aux_of(keys.data()),
              key_words * sizeof(uint64_t));
  ASSERT_EQ(root_a, root_b);

  // Remaining keys: one batch, chunked; parent varies with the serial
  // store's growth (the serial side interns as we stage, so its size is
  // a live, varied id bound) and move = staging index — together they
  // make the first-visit winner for duplicate keys observable in both
  // the parent and move fields.
  std::vector<ShardedStateStore::Staging> chunks;
  size_t staged = 0;
  for (size_t i = 1; i < num_keys;) {
    chunks.emplace_back();
    sharded.ResetStaging(&chunks.back());
    for (size_t c = 0; c < chunk_size && i < num_keys; ++c, ++i) {
      const uint64_t* key = keys.data() + i * key_words;
      uint32_t parent = static_cast<uint32_t>(staged % serial.size());
      GlobalNode move{static_cast<int>(staged), 0};
      sharded.Stage(&chunks.back(), key, aux_of(key), parent, move);
      auto r = serial.Intern(key, parent, move);
      if (r.inserted) {
        std::memcpy(serial.MutableAuxOf(r.id), aux_of(key),
                    key_words * sizeof(uint64_t));
      }
      ++staged;
    }
  }
  sharded.CommitStaged(&chunks, chunks.size(), &pool);

  ASSERT_EQ(serial.size(), sharded.size());
  for (uint32_t id = 0; id < serial.size(); ++id) {
    ASSERT_EQ(std::memcmp(serial.KeyOf(id), sharded.KeyOf(id),
                          key_words * sizeof(uint64_t)),
              0)
        << "id " << id;
    ASSERT_EQ(std::memcmp(serial.AuxOf(id), sharded.AuxOf(id),
                          key_words * sizeof(uint64_t)),
              0)
        << "id " << id;
    ASSERT_EQ(serial.ParentOf(id), sharded.ParentOf(id)) << "id " << id;
    ASSERT_EQ(serial.MoveOf(id), sharded.MoveOf(id)) << "id " << id;
  }
}

TEST(ShardedStateStoreTest, StagedCommitMatchesSerialIntern) {
  const int kKeyWords = 3;
  Rng rng(2024);
  const size_t kNumKeys = 4000;
  std::vector<uint64_t> keys(kNumKeys * kKeyWords);
  // ~50% duplicate keys, scattered through the sequence.
  for (size_t i = 0; i < kNumKeys; ++i) {
    uint64_t v = rng.NextBelow(kNumKeys / 2);
    for (int w = 0; w < kKeyWords; ++w) {
      keys[i * kKeyWords + w] =
          (v + 1) * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(w) * 17;
    }
  }
  for (int shards : {1, 4, 16}) {
    for (size_t chunk : {7u, 64u, 4096u}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE(testing::Message() << "shards " << shards << " chunk "
                                        << chunk << " threads " << threads);
        CheckStagedCommitMatchesSerial(kKeyWords, shards, chunk, threads,
                                       keys, kNumKeys);
      }
    }
  }
}

TEST(ShardedStateStoreTest, CommitWithoutDedupeAppendsEverything) {
  const int kw = 2;
  ShardedStateStore store(kw, 0, 4);
  ThreadPool pool(2);
  uint64_t root[2] = {0, 0};
  store.InternRoot(root);
  std::vector<ShardedStateStore::Staging> chunks(1);
  store.ResetStaging(&chunks[0]);
  uint64_t key[2] = {1, 2};
  for (int i = 0; i < 5; ++i) {
    store.Stage(&chunks[0], key, nullptr, 0, GlobalNode{i, 0});
  }
  EXPECT_EQ(store.CommitStaged(&chunks, 1, &pool, /*dedupe=*/false), 5u);
  EXPECT_EQ(store.size(), 6u);
  for (uint32_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(store.MoveOf(id).txn, static_cast<int>(id) - 1);
  }
}

TEST(ShardedStateStoreTest, PathFromRootFollowsParentLinks) {
  ShardedStateStore store(1, 0, 8);
  ThreadPool pool(1);
  uint64_t k = 0;
  uint32_t root = store.InternRoot(&k);
  EXPECT_TRUE(store.PathFromRoot(root).empty());
  std::vector<ShardedStateStore::Staging> chunks(1);
  uint32_t parent = root;
  for (int depth = 1; depth <= 40; ++depth) {
    store.ResetStaging(&chunks[0]);
    k = static_cast<uint64_t>(depth);
    store.Stage(&chunks[0], &k, nullptr, parent, GlobalNode{depth, depth});
    ASSERT_EQ(store.CommitStaged(&chunks, 1, &pool), 1u);
    parent = static_cast<uint32_t>(store.size() - 1);
  }
  std::vector<GlobalNode> path = store.PathFromRoot(parent);
  ASSERT_EQ(path.size(), 40u);
  for (int depth = 1; depth <= 40; ++depth) {
    EXPECT_EQ(path[depth - 1], (GlobalNode{depth, depth}));
  }
}

// ---------------------------------------------------------------------
// Incremental expansion vs the naive API, along random walks.

TEST(IncrementalExpansionTest, MatchesNaiveAlongRandomWalks) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = 2;
    opts.entities_per_site = 2;
    opts.num_transactions = 3;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    StateSpace space(&*sys->system);

    const int kw = space.words_per_state();
    const int aw = space.aux_words();
    std::vector<uint64_t> state(kw), aux(aw);
    std::vector<uint64_t> next_state(kw), next_aux(aw);
    std::vector<uint64_t> aux_check(aw);
    space.InitRoot(state.data(), aux.data());

    ExecState naive = space.EmptyState();
    Rng rng(seed * 77 + 3);
    for (int step = 0; step < 64; ++step) {
      // Incremental and naive move generation agree, in the same order.
      std::vector<GlobalNode> inc_moves;
      space.ExpandInto(aux.data(), &inc_moves);
      std::vector<GlobalNode> naive_moves = space.LegalMoves(naive);
      ASSERT_EQ(inc_moves, naive_moves) << "seed " << seed;
      if (naive_moves.empty()) break;

      GlobalNode g = naive_moves[rng.NextBelow(naive_moves.size())];
      space.ApplyInto(state.data(), aux.data(), g, next_state.data(),
                      next_aux.data());
      naive = space.Apply(naive, g);
      ASSERT_EQ(std::memcmp(next_state.data(), naive.words.data(),
                            kw * sizeof(uint64_t)),
                0);
      // The incrementally maintained cache equals a from-scratch rebuild.
      space.InitAux(next_state.data(), aux_check.data());
      ASSERT_EQ(std::memcmp(next_aux.data(), aux_check.data(),
                            aw * sizeof(uint64_t)),
                0)
          << "seed " << seed << " step " << step;
      state.swap(next_state);
      aux.swap(next_aux);
    }
  }
}

// ---------------------------------------------------------------------
// Cross-validation: the incremental engine is verdict- and count-identical
// to the naive reference on >= 100 random small systems.

struct CrossvalShape {
  int sites;
  int entities_per_site;
  int txns;
  int entities_per_txn;
  bool two_phase;
};

class EngineCrossval : public ::testing::TestWithParam<CrossvalShape> {};

TEST_P(EngineCrossval, DeadlockAndSafetyVerdictsAndCountsIdentical) {
  const CrossvalShape& shape = GetParam();
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    RandomSystemOptions opts;
    opts.num_sites = shape.sites;
    opts.entities_per_site = shape.entities_per_site;
    opts.num_transactions = shape.txns;
    opts.entities_per_txn = shape.entities_per_txn;
    opts.two_phase = shape.two_phase;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    const TransactionSystem& s = *sys->system;

    // Every non-reference engine run must match the naive reference bit
    // for bit; kParallelSharded runs at 1, 2, and 4 worker threads.
    const std::vector<std::pair<SearchEngine, int>> kEngines = {
        {SearchEngine::kIncremental, 0},
        {SearchEngine::kParallelSharded, 1},
        {SearchEngine::kParallelSharded, 2},
        {SearchEngine::kParallelSharded, 4},
    };

    for (auto mode : {DeadlockDetectionMode::kStuckState,
                      DeadlockDetectionMode::kReductionGraph}) {
      DeadlockCheckOptions ref;
      ref.mode = mode;
      ref.engine = SearchEngine::kNaiveReference;
      auto b = CheckDeadlockFreedom(s, ref);
      ASSERT_TRUE(b.ok());
      for (const auto& [engine, threads] : kEngines) {
        SCOPED_TRACE(testing::Message()
                     << "seed " << seed << " engine "
                     << static_cast<int>(engine) << " threads " << threads);
        DeadlockCheckOptions fast = ref;
        fast.engine = engine;
        fast.search_threads = threads;
        auto a = CheckDeadlockFreedom(s, fast);
        ASSERT_TRUE(a.ok());
        ASSERT_EQ(a->deadlock_free, b->deadlock_free);
        ASSERT_EQ(a->states_visited, b->states_visited);
        ASSERT_EQ(a->witness.has_value(), b->witness.has_value());
        if (a->witness.has_value()) {
          EXPECT_EQ(a->witness->schedule, b->witness->schedule);
          EXPECT_EQ(a->witness->prefix_nodes, b->witness->prefix_nodes);
          EXPECT_EQ(a->witness->reduction_cycle,
                    b->witness->reduction_cycle);
        }
      }
    }

    {
      SafetyCheckOptions ref;
      ref.engine = SearchEngine::kNaiveReference;
      auto b = CheckSafeAndDeadlockFree(s, ref);
      auto sb = CheckSafety(s, ref);
      ASSERT_TRUE(b.ok());
      ASSERT_TRUE(sb.ok());
      for (const auto& [engine, threads] : kEngines) {
        SCOPED_TRACE(testing::Message()
                     << "seed " << seed << " engine "
                     << static_cast<int>(engine) << " threads " << threads);
        SafetyCheckOptions fast;
        fast.engine = engine;
        fast.search_threads = threads;
        auto a = CheckSafeAndDeadlockFree(s, fast);
        ASSERT_TRUE(a.ok());
        ASSERT_EQ(a->holds, b->holds);
        ASSERT_EQ(a->states_visited, b->states_visited);
        ASSERT_EQ(a->violation.has_value(), b->violation.has_value());
        if (a->violation.has_value()) {
          EXPECT_EQ(a->violation->schedule, b->violation->schedule);
          EXPECT_EQ(a->violation->txn_cycle, b->violation->txn_cycle);
        }

        auto sa = CheckSafety(s, fast);
        ASSERT_TRUE(sa.ok());
        ASSERT_EQ(sa->holds, sb->holds);
        ASSERT_EQ(sa->states_visited, sb->states_visited);
        ASSERT_EQ(sa->violation.has_value(), sb->violation.has_value());
        if (sa->violation.has_value() && sb->violation.has_value()) {
          EXPECT_EQ(sa->violation->schedule, sb->violation->schedule);
          EXPECT_EQ(sa->violation->txn_cycle, sb->violation->txn_cycle);
        }
      }
    }
  }
}

// 5 shapes x 30 seeds = 150 random systems.
INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineCrossval,
    ::testing::Values(CrossvalShape{2, 2, 3, 2, false},
                      CrossvalShape{1, 3, 2, 3, false},
                      CrossvalShape{3, 2, 2, 3, true},
                      CrossvalShape{1, 2, 4, 2, false},
                      CrossvalShape{2, 3, 3, 3, true}));

// The memoization ablation must agree between engines as well (witnesses
// excluded: without memoization the two engines legitimately record
// different — both valid — parent paths).
TEST(EngineCrossvalNoMemo, CountsIdenticalWithoutMemoization) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomSystemOptions opts;
    opts.num_transactions = 2;
    opts.entities_per_txn = 2;
    opts.seed = seed;
    auto sys = GenerateRandomSystem(opts);
    ASSERT_TRUE(sys.ok());
    DeadlockCheckOptions ref;
    ref.memoize = false;
    ref.max_states = 2'000'000;
    ref.engine = SearchEngine::kNaiveReference;
    auto b = CheckDeadlockFreedom(*sys->system, ref);
    for (auto engine :
         {SearchEngine::kIncremental, SearchEngine::kParallelSharded}) {
      DeadlockCheckOptions fast = ref;
      fast.engine = engine;
      fast.search_threads = 2;
      auto a = CheckDeadlockFreedom(*sys->system, fast);
      ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code());
        continue;
      }
      EXPECT_EQ(a->deadlock_free, b->deadlock_free) << "seed " << seed;
      EXPECT_EQ(a->states_visited, b->states_visited) << "seed " << seed;
    }
  }
}

// The benchmark workload generators: verdicts are known by construction
// and the engines must agree on them (and on the state counts).
TEST(EngineCrossval, BenchWorkloadGeneratorsAgree) {
  auto grid = GenerateDisjointGridSystem(3, 2);
  auto chain = GenerateSharedChainSystem(4);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(chain.ok());
  for (const TransactionSystem* s : {grid->system.get(),
                                     chain->system.get()}) {
    DeadlockCheckOptions dopts;
    auto da = CheckDeadlockFreedom(*s, dopts);
    dopts.engine = SearchEngine::kNaiveReference;
    auto db = CheckDeadlockFreedom(*s, dopts);
    dopts.engine = SearchEngine::kParallelSharded;
    dopts.search_threads = 4;
    auto dp = CheckDeadlockFreedom(*s, dopts);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(dp.ok());
    EXPECT_TRUE(da->deadlock_free);
    EXPECT_EQ(da->states_visited, db->states_visited);
    EXPECT_EQ(dp->states_visited, db->states_visited);

    SafetyCheckOptions sopts;
    auto sa = CheckSafeAndDeadlockFree(*s, sopts);
    sopts.engine = SearchEngine::kNaiveReference;
    auto sb = CheckSafeAndDeadlockFree(*s, sopts);
    sopts.engine = SearchEngine::kParallelSharded;
    sopts.search_threads = 4;
    auto sp = CheckSafeAndDeadlockFree(*s, sopts);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(sp.ok());
    EXPECT_TRUE(sa->holds);
    EXPECT_EQ(sa->states_visited, sb->states_visited);
    EXPECT_EQ(sp->states_visited, sb->states_visited);
  }
}

// Budget exhaustion surfaces identically from both engines.
TEST(EngineCrossval, ResourceExhaustionMatches) {
  auto ring = GenerateRingSystem(4);
  ASSERT_TRUE(ring.ok());
  DeadlockCheckOptions opts;
  opts.max_states = 3;
  for (auto engine :
       {SearchEngine::kIncremental, SearchEngine::kNaiveReference,
        SearchEngine::kParallelSharded}) {
    opts.engine = engine;
    opts.search_threads = 2;
    auto r = CheckDeadlockFreedom(*ring->system, opts);
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "engine " << static_cast<int>(engine);
  }
}

}  // namespace
}  // namespace wydb
