// Tests for the runtime substrate: event queue, network, lock manager,
// executor, policies.
#include <gtest/gtest.h>

#include "common/random.h"
#include "runtime/lock_manager.h"
#include "runtime/scheduler.h"
#include "runtime/sim/event_queue.h"
#include "runtime/sim/network.h"
#include "runtime/txn_runtime.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.At(30, [&] { fired.push_back(3); });
  q.At(10, [&] { fired.push_back(1); });
  q.At(20, [&] { fired.push_back(2); });
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.At(7, [&fired, i] { fired.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.After(10, tick);
  };
  q.After(0, tick);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  SimTime seen = 999;
  q.At(50, [&] { q.At(10, [&] { seen = q.now(); }); });
  q.RunAll();
  EXPECT_EQ(seen, 50u);
}

TEST(EventQueueTest, MaxEventsBudget) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.At(i, [] {});
  EXPECT_EQ(q.RunAll(4), 4u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 6u);
}

TEST(NetworkTest, LatencyAppliedAndMessagesCounted) {
  EventQueue q;
  Rng rng(1);
  LatencyModel model;
  model.base = 100;
  model.jitter = 0;
  model.local = 1;
  Network net(&q, 2, model, &rng);
  SimTime remote_at = 0, local_at = 0;
  net.Send(0, 1, [&] { remote_at = q.now(); });
  net.Send(0, 0, [&] { local_at = q.now(); });
  q.RunAll();
  EXPECT_EQ(remote_at, 100u);
  EXPECT_EQ(local_at, 1u);
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NetworkTest, JitterCanReorderMessages) {
  EventQueue q;
  Rng rng(3);
  LatencyModel model;
  model.base = 10;
  model.jitter = 50;
  Network net(&q, 2, model, &rng);
  std::vector<int> arrivals;
  bool reordered_once = false;
  for (int round = 0; round < 50 && !reordered_once; ++round) {
    arrivals.clear();
    net.Send(0, 1, [&] { arrivals.push_back(1); });
    net.Send(0, 1, [&] { arrivals.push_back(2); });
    q.RunAll();
    if (arrivals == std::vector<int>{2, 1}) reordered_once = true;
  }
  EXPECT_TRUE(reordered_once);
}

TEST(LockManagerTest, GrantAndQueue) {
  LockManager lm(0);
  int granted = 0;
  lm.Request(1, 7, [&] { granted = 1; });
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(lm.HolderOf(7), 1);
  lm.Request(2, 7, [&] { granted = 2; });
  EXPECT_EQ(granted, 1);  // Queued.
  EXPECT_TRUE(lm.IsWaiting(2));
  lm.Release(1, 7);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(lm.HolderOf(7), 2);
  EXPECT_FALSE(lm.IsWaiting(2));
}

TEST(LockManagerTest, FifoOrder) {
  LockManager lm(0);
  std::vector<int> grants;
  lm.Request(1, 5, [&] { grants.push_back(1); });
  lm.Request(2, 5, [&] { grants.push_back(2); });
  lm.Request(3, 5, [&] { grants.push_back(3); });
  lm.Release(1, 5);
  lm.Release(2, 5);
  lm.Release(3, 5);
  EXPECT_EQ(grants, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(lm.grants(), 3u);
}

TEST(LockManagerTest, StaleReleaseIgnored) {
  LockManager lm(0);
  lm.Request(1, 5, [] {});
  lm.Release(2, 5);  // Not the holder: no-op.
  EXPECT_EQ(lm.HolderOf(5), 1);
  lm.Release(1, 99);  // Unknown entity: no-op.
}

TEST(LockManagerTest, AbortReleasesAndDequeues) {
  LockManager lm(0);
  std::vector<int> grants;
  lm.Request(1, 5, [&] { grants.push_back(1); });
  lm.Request(2, 5, [&] { grants.push_back(2); });
  lm.Request(3, 5, [&] { grants.push_back(3); });
  lm.Request(1, 6, [&] { grants.push_back(10); });
  lm.Abort(2);  // Dequeues 2's wait on entity 5.
  lm.Abort(1);  // Releases 5 (grant -> 3) and 6.
  EXPECT_EQ(lm.HolderOf(5), 3);
  EXPECT_EQ(lm.HolderOf(6), -1);
  EXPECT_EQ(grants, (std::vector<int>{1, 10, 3}));
}

TEST(LockManagerTest, OnBlockHookFires) {
  LockManager lm(0);
  int blocked_requester = -1, blocking_holder = -1;
  lm.set_on_block([&](int r, int h, EntityId) {
    blocked_requester = r;
    blocking_holder = h;
  });
  lm.Request(1, 5, [] {});
  lm.Request(2, 5, [] {});
  EXPECT_EQ(blocked_requester, 2);
  EXPECT_EQ(blocking_holder, 1);
}

TEST(LockManagerTest, WaitForEdges) {
  LockManager lm(0);
  lm.Request(1, 5, [] {});
  lm.Request(2, 5, [] {});
  lm.Request(3, 5, [] {});
  auto edges = lm.WaitForEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].holder, 1);
  EXPECT_EQ(edges[0].entity, 5);
}

TEST(ConflictPolicyTest, Names) {
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kBlock), "block");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kWoundWait), "wound-wait");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kWaitDie), "wait-die");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kDetect), "detect");
}

TEST(ConflictPolicyTest, WoundWaitMatrix) {
  using CA = ConflictAction;
  // Older requester (ts 1) vs younger holder (ts 5): wound the holder.
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWoundWait, 1, 5),
            CA::kAbortHolder);
  // Younger requester waits.
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWoundWait, 5, 1), CA::kWait);
}

TEST(ConflictPolicyTest, WaitDieMatrix) {
  using CA = ConflictAction;
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWaitDie, 1, 5), CA::kWait);
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWaitDie, 5, 1),
            CA::kAbortRequester);
}

TEST(ConflictPolicyTest, BlockingPoliciesAlwaysWait) {
  for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kDetect}) {
    EXPECT_EQ(ResolveConflict(policy, 1, 5), ConflictAction::kWait);
    EXPECT_EQ(ResolveConflict(policy, 5, 1), ConflictAction::kWait);
  }
}

TEST(TxnExecutorTest, WalksChainInOrder) {
  auto db = testutil::MakeDb({{"s1", {"x", "y"}}});
  Transaction t =
      testutil::MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  TxnExecutor exec(0, &t);
  EXPECT_EQ(exec.attempt(), 1);
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{0});
  exec.MarkIssued(0);
  EXPECT_TRUE(exec.ReadySteps().empty());  // Issued but not complete.
  exec.MarkCompleted(0);
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{1});
  exec.MarkIssued(1);
  exec.MarkCompleted(1);
  EXPECT_EQ(exec.HeldEntities().size(), 2u);
  exec.MarkIssued(2);
  exec.MarkCompleted(2);
  exec.MarkIssued(3);
  exec.MarkCompleted(3);
  EXPECT_TRUE(exec.IsDone());
  EXPECT_EQ(exec.completion_order().size(), 4u);
}

TEST(TxnExecutorTest, ParallelBranchesBothReady) {
  auto db = testutil::MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  Transaction t = *b.Build();
  TxnExecutor exec(0, &t);
  EXPECT_EQ(exec.ReadySteps().size(), 2u);  // Both locks.
}

TEST(TxnExecutorTest, RestartClearsProgress) {
  auto db = testutil::MakeDb({{"s1", {"x"}}});
  Transaction t = testutil::MakeSeq(db.get(), "T", {"Lx", "Ux"});
  TxnExecutor exec(0, &t);
  exec.MarkIssued(0);
  exec.MarkCompleted(0);
  exec.Restart();
  EXPECT_EQ(exec.attempt(), 2);
  EXPECT_FALSE(exec.IsDone());
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{0});
  EXPECT_TRUE(exec.completion_order().empty());
}

}  // namespace
}  // namespace wydb
