// Tests for the runtime substrate: event queue, network, lock manager,
// executor, policies, and per-copy message staleness in the replicated
// engine.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "runtime/lock_manager.h"
#include "runtime/scheduler.h"
#include "runtime/sim/event_queue.h"
#include "runtime/sim/network.h"
#include "runtime/simulation.h"
#include "runtime/txn_runtime.h"
#include "runtime/workload.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

SimEvent TaggedEvent(int32_t tag) {
  SimEvent ev;
  ev.txn = tag;
  return ev;
}

// Drains the queue, returning the txn tags in pop order.
std::vector<int32_t> DrainTags(EventQueue* q) {
  std::vector<int32_t> tags;
  SimEvent ev;
  while (q->PopNext(&ev)) tags.push_back(ev.txn);
  return tags;
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.At(30, TaggedEvent(3));
  q.At(10, TaggedEvent(1));
  q.At(20, TaggedEvent(2));
  EXPECT_EQ(DrainTags(&q), (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (int32_t i = 0; i < 5; ++i) q.At(7, TaggedEvent(i));
  EXPECT_EQ(DrainTags(&q), (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  q.After(0, TaggedEvent(0));
  int count = 0;
  SimEvent ev;
  while (q.PopNext(&ev)) {
    if (++count < 5) q.After(10, TaggedEvent(count));
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  q.At(50, TaggedEvent(0));
  SimEvent ev;
  ASSERT_TRUE(q.PopNext(&ev));
  EXPECT_EQ(q.now(), 50u);
  q.At(10, TaggedEvent(1));  // In the past: clamped.
  ASSERT_TRUE(q.PopNext(&ev));
  EXPECT_EQ(ev.time, 50u);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueueTest, PendingAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  for (int32_t i = 0; i < 10; ++i) q.At(i, TaggedEvent(i));
  EXPECT_EQ(q.pending(), 10u);
  SimEvent ev;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.PopNext(&ev));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.processed(), 4u);
}

TEST(EventQueueTest, RandomizedHeapOrder) {
  EventQueue q;
  Rng rng(99);
  std::vector<SimTime> times;
  for (int i = 0; i < 500; ++i) {
    SimTime t = rng.NextBelow(1000);
    times.push_back(t);
    q.At(t, TaggedEvent(i));
  }
  SimEvent ev;
  SimTime last = 0;
  while (q.PopNext(&ev)) {
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
  EXPECT_EQ(q.processed(), 500u);
}

TEST(NetworkTest, LatencyAppliedAndMessagesCounted) {
  EventQueue q;
  Rng rng(1);
  LatencyModel model;
  model.base = 100;
  model.jitter = 0;
  model.local = 1;
  Network net(&q, 2, model, &rng);
  net.Send(0, 1, TaggedEvent(1));  // Remote.
  net.Send(0, 0, TaggedEvent(2));  // Local.
  SimEvent ev;
  ASSERT_TRUE(q.PopNext(&ev));
  EXPECT_EQ(ev.txn, 2);
  EXPECT_EQ(ev.time, 1u);
  ASSERT_TRUE(q.PopNext(&ev));
  EXPECT_EQ(ev.txn, 1);
  EXPECT_EQ(ev.time, 100u);
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NetworkTest, JitterCanReorderMessages) {
  EventQueue q;
  Rng rng(3);
  LatencyModel model;
  model.base = 10;
  model.jitter = 50;
  Network net(&q, 2, model, &rng);
  bool reordered_once = false;
  for (int round = 0; round < 50 && !reordered_once; ++round) {
    net.Send(0, 1, TaggedEvent(1));
    net.Send(0, 1, TaggedEvent(2));
    if (DrainTags(&q) == std::vector<int32_t>{2, 1}) reordered_once = true;
  }
  EXPECT_TRUE(reordered_once);
}

// Convenience wrapper for lock-manager tests: drains grant/block records
// after every operation.
struct LockHarness {
  explicit LockHarness(int num_entities = 128)
      : lm(0, num_entities, &events) {}

  std::vector<int> DrainGrants() {
    std::vector<int> granted;
    for (const LockEvent& ev : events) {
      if (ev.kind == LockEvent::Kind::kGrant) granted.push_back(ev.txn);
    }
    events.clear();
    return granted;
  }

  // (requester, holder) pairs of the drained block records.
  std::vector<std::pair<int, int>> DrainBlocks() {
    std::vector<std::pair<int, int>> blocks;
    for (const LockEvent& ev : events) {
      if (ev.kind == LockEvent::Kind::kBlock) {
        blocks.emplace_back(ev.txn, ev.holder);
      }
    }
    events.clear();
    return blocks;
  }

  std::vector<LockEvent> events;
  LockManager lm;
};

TEST(LockManagerTest, GrantAndQueue) {
  LockHarness h;
  h.lm.Request(1, 7);
  EXPECT_EQ(h.DrainGrants(), std::vector<int>{1});
  EXPECT_EQ(h.lm.HolderOf(7), 1);
  h.lm.Request(2, 7);
  EXPECT_TRUE(h.DrainGrants().empty());  // Queued.
  EXPECT_TRUE(h.lm.IsWaiting(2));
  EXPECT_TRUE(h.lm.IsWaitingOn(2, 7));
  h.lm.Release(1, 7);
  EXPECT_EQ(h.DrainGrants(), std::vector<int>{2});
  EXPECT_EQ(h.lm.HolderOf(7), 2);
  EXPECT_FALSE(h.lm.IsWaiting(2));
}

TEST(LockManagerTest, FifoOrder) {
  LockHarness h;
  std::vector<int> grants;
  h.lm.Request(1, 5);
  h.lm.Request(2, 5);
  h.lm.Request(3, 5);
  auto append = [&] {
    for (int g : h.DrainGrants()) grants.push_back(g);
  };
  append();
  h.lm.Release(1, 5);
  append();
  h.lm.Release(2, 5);
  append();
  h.lm.Release(3, 5);
  append();
  EXPECT_EQ(grants, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(h.lm.grants(), 3u);
}

TEST(LockManagerTest, StaleReleaseIgnored) {
  LockHarness h;
  h.lm.Request(1, 5);
  h.lm.Release(2, 5);  // Not the holder: no-op.
  EXPECT_EQ(h.lm.HolderOf(5), 1);
  h.lm.Release(1, 99);  // Untouched entity: no-op.
  EXPECT_EQ(h.lm.HolderOf(5), 1);
}

TEST(LockManagerTest, AbortReleasesAndDequeues) {
  LockHarness h;
  std::vector<int> grants;
  h.lm.Request(1, 5);
  h.lm.Request(2, 5);
  h.lm.Request(3, 5);
  h.lm.Request(1, 6);
  for (int g : h.DrainGrants()) grants.push_back(g);
  h.lm.Abort(2);  // Dequeues 2's wait on entity 5.
  for (int g : h.DrainGrants()) grants.push_back(g);
  h.lm.Abort(1);  // Releases 5 (grant -> 3) and 6.
  for (int g : h.DrainGrants()) grants.push_back(g);
  EXPECT_EQ(h.lm.HolderOf(5), 3);
  EXPECT_EQ(h.lm.HolderOf(6), -1);
  EXPECT_EQ(grants, (std::vector<int>{1, 1, 3}));
}

TEST(LockManagerTest, BlockRecordsEmitted) {
  LockHarness h;
  h.lm.Request(1, 5);
  h.DrainGrants();
  h.lm.Request(2, 5);
  auto blocks = h.DrainBlocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<int, int>{2, 1}));
}

TEST(LockManagerTest, BlocksReemittedAgainstNewHolder) {
  LockHarness h;
  h.lm.Request(1, 5);
  h.lm.Request(2, 5);
  h.lm.Request(3, 5);
  h.events.clear();
  // Release: 2 becomes the holder; 3's wait edge must be re-reported
  // against 2 so a timestamp policy can re-evaluate it.
  h.lm.Release(1, 5);
  auto blocks = h.DrainBlocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<int, int>{3, 2}));
}

TEST(LockManagerTest, GrantRecordCarriesWaiterPayload) {
  LockHarness h;
  h.lm.Request(1, 5, /*node=*/4, /*attempt=*/7);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].kind, LockEvent::Kind::kGrant);
  EXPECT_EQ(h.events[0].node, 4);
  EXPECT_EQ(h.events[0].attempt, 7);
  EXPECT_EQ(h.events[0].entity, 5);
  h.events.clear();
  h.lm.Request(2, 5, /*node=*/9, /*attempt=*/3);
  h.events.clear();
  h.lm.Release(1, 5);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].node, 9);
  EXPECT_EQ(h.events[0].attempt, 3);
}

TEST(LockManagerTest, WaitForEdges) {
  LockHarness h;
  h.lm.Request(1, 5);
  h.lm.Request(2, 5);
  h.lm.Request(3, 5);
  auto edges = h.lm.WaitForEdges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].holder, 1);
  EXPECT_EQ(edges[0].entity, 5);
  EXPECT_EQ(edges[0].waiter, 2);
  EXPECT_EQ(edges[1].waiter, 3);
}

TEST(LockManagerTest, WaiterPoolRecyclesAcrossChurn) {
  LockHarness h(8);
  // Heavy queue churn on a few entities; the pool free-list must keep the
  // table consistent throughout.
  for (int round = 0; round < 50; ++round) {
    for (int t = 1; t <= 4; ++t) h.lm.Request(t, round % 4);
    h.lm.Abort(2);
    h.lm.Abort(1);
    h.lm.Abort(3);
    h.lm.Abort(4);
    h.events.clear();
    EXPECT_EQ(h.lm.HolderOf(round % 4), -1);
    for (int t = 1; t <= 4; ++t) EXPECT_FALSE(h.lm.IsWaiting(t));
  }
}

// MPL-1 churn shape: one holder, one waiter that aborts and retries back
// to back. The free list must recycle the single waiter slot instead of
// growing the pool, and the retry's grant must echo the *fresh* attempt
// payload, never a recycled stale one — that echo is what lets the
// engine detect stale grants via the attempt epoch (PR 2 invariants).
TEST(LockManagerTest, BackToBackAbortRetryReusesOneWaiterSlot) {
  LockHarness h;
  h.lm.Request(1, 5);  // Holder for the whole churn phase.
  h.events.clear();
  for (int attempt = 1; attempt <= 100; ++attempt) {
    h.lm.Request(2, 5, /*node=*/0, attempt);
    EXPECT_TRUE(h.lm.IsWaitingOn(2, 5));
    h.lm.Abort(2);  // The retry's prior attempt dies before being served.
    EXPECT_FALSE(h.lm.IsWaiting(2));
    h.events.clear();
  }
  EXPECT_EQ(h.lm.waiter_pool_size(), 1u);   // One slot, recycled 100x.
  EXPECT_EQ(h.lm.free_waiter_count(), 1u);  // And free again after churn.

  // The 101st retry is eventually served with its own payload.
  h.lm.Request(2, 5, /*node=*/3, /*attempt=*/101);
  h.events.clear();
  h.lm.Release(1, 5);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].kind, LockEvent::Kind::kGrant);
  EXPECT_EQ(h.events[0].txn, 2);
  EXPECT_EQ(h.events[0].node, 3);
  EXPECT_EQ(h.events[0].attempt, 101);
  EXPECT_EQ(h.lm.waiter_pool_size(), 1u);
  EXPECT_EQ(h.lm.free_waiter_count(), 1u);
}

// A grant buffered for an attempt that aborted before the engine drained
// it: the record must keep the old attempt number (the engine's staleness
// test), and the abort must free the just-granted lock for the next
// requester even though the grant record is still sitting in the buffer.
TEST(LockManagerTest, BufferedGrantKeepsStaleAttemptAfterAbort) {
  LockHarness h;
  h.lm.Request(1, 5);
  h.events.clear();
  h.lm.Request(2, 5, /*node=*/1, /*attempt=*/4);
  h.events.clear();
  h.lm.Release(1, 5);  // Grants 2 (attempt 4); record now "in flight".
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].attempt, 4);
  // Txn 2 aborts (its executor bumps to attempt 5) before processing the
  // grant. The manager releases the lock; the stale record still says 4.
  h.lm.Abort(2);
  EXPECT_EQ(h.lm.HolderOf(5), -1);
  EXPECT_EQ(h.events[0].attempt, 4);
  // Fresh attempt re-requests and is granted immediately with payload 5.
  h.events.clear();
  h.lm.Request(2, 5, /*node=*/1, /*attempt=*/5);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].kind, LockEvent::Kind::kGrant);
  EXPECT_EQ(h.events[0].attempt, 5);
  EXPECT_EQ(h.lm.waiter_pool_size(), 1u);
}

// The pool plateaus at the high-water mark of *simultaneous* waiters,
// no matter how much churn follows.
TEST(LockManagerTest, WaiterPoolPlateausAtHighWaterMark) {
  LockHarness h;
  h.lm.Request(1, 0);
  for (int t = 2; t <= 5; ++t) h.lm.Request(t, 0);  // 4 waiters queued.
  EXPECT_EQ(h.lm.waiter_pool_size(), 4u);
  EXPECT_EQ(h.lm.free_waiter_count(), 0u);
  h.events.clear();
  for (int round = 0; round < 200; ++round) {
    // Never more than 4 queued at once; the pool must not grow past 4.
    for (int t = 2; t <= 5; ++t) h.lm.Abort(t);
    for (int t = 2; t <= 5; ++t) h.lm.Request(t, 0);
    h.events.clear();
  }
  EXPECT_EQ(h.lm.waiter_pool_size(), 4u);
  for (int t = 1; t <= 5; ++t) h.lm.Abort(t);
  EXPECT_EQ(h.lm.free_waiter_count(), 4u);
}

TEST(ConflictPolicyTest, Names) {
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kBlock), "block");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kWoundWait), "wound-wait");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kWaitDie), "wait-die");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kDetect), "detect");
}

TEST(ConflictPolicyTest, ParseRoundTrips) {
  for (ConflictPolicy policy :
       {ConflictPolicy::kBlock, ConflictPolicy::kWoundWait,
        ConflictPolicy::kWaitDie, ConflictPolicy::kDetect}) {
    ConflictPolicy parsed;
    ASSERT_TRUE(ParseConflictPolicy(ConflictPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  ConflictPolicy parsed;
  EXPECT_FALSE(ParseConflictPolicy("optimistic", &parsed));
}

TEST(ConflictPolicyTest, WoundWaitMatrix) {
  using CA = ConflictAction;
  // Older requester (ts 1) vs younger holder (ts 5): wound the holder.
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWoundWait, 1, 5),
            CA::kAbortHolder);
  // Younger requester waits.
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWoundWait, 5, 1), CA::kWait);
}

TEST(ConflictPolicyTest, WaitDieMatrix) {
  using CA = ConflictAction;
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWaitDie, 1, 5), CA::kWait);
  EXPECT_EQ(ResolveConflict(ConflictPolicy::kWaitDie, 5, 1),
            CA::kAbortRequester);
}

TEST(ConflictPolicyTest, BlockingPoliciesAlwaysWait) {
  for (auto policy : {ConflictPolicy::kBlock, ConflictPolicy::kDetect}) {
    EXPECT_EQ(ResolveConflict(policy, 1, 5), ConflictAction::kWait);
    EXPECT_EQ(ResolveConflict(policy, 5, 1), ConflictAction::kWait);
  }
}

TEST(TxnExecutorTest, WalksChainInOrder) {
  auto db = testutil::MakeDb({{"s1", {"x", "y"}}});
  Transaction t =
      testutil::MakeSeq(db.get(), "T", {"Lx", "Ly", "Uy", "Ux"});
  TxnExecutor exec(0, &t);
  EXPECT_EQ(exec.attempt(), 1);
  EXPECT_EQ(exec.state(), TxnState::kNotStarted);
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{0});
  exec.MarkIssued(0);
  EXPECT_TRUE(exec.ReadySteps().empty());  // Issued but not complete.
  exec.MarkCompleted(0);
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{1});
  exec.MarkIssued(1);
  exec.MarkCompleted(1);
  EXPECT_EQ(exec.HeldEntities().size(), 2u);
  exec.MarkIssued(2);
  exec.MarkCompleted(2);
  exec.MarkIssued(3);
  exec.MarkCompleted(3);
  EXPECT_TRUE(exec.IsDone());
  EXPECT_EQ(exec.completion_order().size(), 4u);
}

TEST(TxnExecutorTest, ParallelBranchesBothReady) {
  auto db = testutil::MakeSpreadDb({"x", "y"});
  TransactionBuilder b(db.get(), "T");
  b.set_auto_site_chain(false);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  Transaction t = *b.Build();
  TxnExecutor exec(0, &t);
  EXPECT_EQ(exec.ReadySteps().size(), 2u);  // Both locks.
}

TEST(TxnExecutorTest, RestartClearsProgress) {
  auto db = testutil::MakeDb({{"s1", {"x"}}});
  Transaction t = testutil::MakeSeq(db.get(), "T", {"Lx", "Ux"});
  TxnExecutor exec(0, &t);
  exec.MarkStarted();
  EXPECT_EQ(exec.state(), TxnState::kRunning);
  exec.MarkIssued(0);
  exec.MarkCompleted(0);
  exec.Restart();
  EXPECT_EQ(exec.attempt(), 2);
  EXPECT_EQ(exec.state(), TxnState::kBackoff);
  EXPECT_FALSE(exec.IsDone());
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{0});
  EXPECT_TRUE(exec.completion_order().empty());
}

TEST(TxnExecutorTest, BeginRoundBumpsAttemptAndRuns) {
  auto db = testutil::MakeDb({{"s1", {"x"}}});
  Transaction t = testutil::MakeSeq(db.get(), "T", {"Lx", "Ux"});
  TxnExecutor exec(0, &t);
  exec.MarkStarted();
  exec.MarkIssued(0);
  exec.MarkCompleted(0);
  exec.MarkIssued(1);
  exec.MarkCompleted(1);
  EXPECT_TRUE(exec.IsDone());
  exec.set_state(TxnState::kCommitted);
  exec.BeginRound();
  EXPECT_EQ(exec.attempt(), 2);  // Prior-round stragglers now stale.
  EXPECT_EQ(exec.state(), TxnState::kRunning);
  EXPECT_FALSE(exec.IsDone());
  EXPECT_EQ(exec.ReadySteps(), std::vector<NodeId>{0});
}

// ---------------------------------------------------------------------
// Per-copy message staleness (DESIGN.md §6.3): when a policy aborts a
// transaction mid-acquisition, its in-flight per-copy lock/unlock/ack
// messages and buffered grants must all go stale via the attempt epoch.
// If any copy stayed locked or any stale ack advanced the executor, the
// runs below would wedge (budget exhaustion), deadlock, or diverge
// between reruns.

// Contended replicated pair under the aborting policies: every wound /
// die leaves per-copy messages of the aborted attempt in flight, and the
// system must still drain to full commitment.
TEST(ReplicatedStalenessTest, AbortingPoliciesDrainToCommitment) {
  auto db = testutil::MakeDb({{"s1", {"x"}}, {"s2", {"y"}}, {"s3", {}}});
  std::vector<Transaction> txns;
  txns.push_back(testutil::MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(testutil::MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  TransactionSystem sys = testutil::MakeSystem(db.get(), std::move(txns));

  CopyPlacement placement(*db);
  ASSERT_TRUE(placement
                  .SetCopies(*db, db->FindEntity("x"),
                             {db->FindSite("s1"), db->FindSite("s3"),
                              db->FindSite("s2")})
                  .ok());
  ASSERT_TRUE(placement
                  .SetCopies(*db, db->FindEntity("y"),
                             {db->FindSite("s2"), db->FindSite("s3")})
                  .ok());

  for (ConflictPolicy policy :
       {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie,
        ConflictPolicy::kDetect}) {
    uint64_t total_aborts = 0;
    for (uint64_t seed = 1; seed <= 30; ++seed) {
      SimOptions opts;
      opts.policy = policy;
      opts.seed = seed;
      opts.placement = &placement;
      auto res = RunSimulation(sys, opts);
      ASSERT_TRUE(res.ok());
      EXPECT_TRUE(res->all_committed)
          << ConflictPolicyName(policy) << " seed " << seed;
      EXPECT_FALSE(res->budget_exhausted);
      EXPECT_FALSE(res->gave_up);
      EXPECT_TRUE(res->history_serializable);
      // Exactly one history entry per logical step, replicated or not.
      EXPECT_EQ(res->committed_history.size(),
                static_cast<size_t>(sys.TotalSteps()));
      total_aborts += res->aborts;

      // Bit-determinism: the same seed replays identically.
      auto replay = RunSimulation(sys, opts);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(replay->events, res->events);
      EXPECT_EQ(replay->aborts, res->aborts);
      EXPECT_EQ(replay->makespan, res->makespan);
      EXPECT_EQ(replay->committed_history, res->committed_history);
    }
    // The staleness path was actually exercised.
    EXPECT_GT(total_aborts, 0u) << ConflictPolicyName(policy);
  }
}

// A wound mid-secondary-fan-out: the victim's remaining copies must be
// released even though its secondary kLockArrive events are still in
// flight when the abort happens. High jitter maximizes in-flight
// windows; wound-wait guarantees aborts on this collision course.
TEST(ReplicatedStalenessTest, WoundDuringFanOutReleasesAllCopies) {
  auto db = testutil::MakeDb({{"s1", {"x"}}, {"s2", {}}, {"s3", {}}});
  std::vector<Transaction> txns;
  txns.push_back(testutil::MakeSeq(db.get(), "old", {"Lx", "Ux"}));
  txns.push_back(testutil::MakeSeq(db.get(), "young", {"Lx", "Ux"}));
  TransactionSystem sys = testutil::MakeSystem(db.get(), std::move(txns));

  CopyPlacement placement(*db);
  ASSERT_TRUE(placement
                  .SetCopies(*db, db->FindEntity("x"),
                             {db->FindSite("s1"), db->FindSite("s2"),
                              db->FindSite("s3")})
                  .ok());

  uint64_t total_aborts = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SimOptions opts;
    opts.policy = ConflictPolicy::kWoundWait;
    opts.seed = seed;
    opts.placement = &placement;
    opts.latency.jitter = 40;  // Wide in-flight windows.
    opts.start_spread = 3;     // Near-simultaneous collision on x.
    auto res = RunSimulation(sys, opts);
    ASSERT_TRUE(res.ok());
    // If the wound left a stale copy locked, the survivor could never
    // acquire all three copies and the run would end budget-exhausted or
    // deadlocked instead of fully committed.
    EXPECT_TRUE(res->all_committed) << "seed " << seed;
    EXPECT_FALSE(res->deadlocked);
    total_aborts += res->aborts;
  }
  EXPECT_GT(total_aborts, 0u);
}

// Closed-loop traffic at MPL 1: rounds serialize through the admission
// FIFO, but in-flight unlocks of the just-committed round make the next
// admitted transaction block on a "holder" that is already thinking —
// the aborting policies then wound/die through attempts back to back.
// If any stale grant (old attempt epoch) were honoured, or a recycled
// waiter slot misdirected a grant, the session would wedge (budget
// exhaustion / give-up) or lose determinism.
TEST(AttemptEpochTest, Mpl1AbortRetryChurnDrainsDeterministically) {
  auto db = testutil::MakeDb({{"s1", {"x"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(testutil::MakeSeq(db.get(), "T1", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(testutil::MakeSeq(db.get(), "T2", {"Ly", "Lx", "Ux", "Uy"}));
  txns.push_back(testutil::MakeSeq(db.get(), "T3", {"Lx", "Ux"}));
  TransactionSystem sys = testutil::MakeSystem(db.get(), std::move(txns));

  for (ConflictPolicy policy :
       {ConflictPolicy::kWoundWait, ConflictPolicy::kWaitDie,
        ConflictPolicy::kBlock}) {
    uint64_t total_commits = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      WorkloadOptions opts;
      opts.sim.policy = policy;
      opts.sim.seed = seed;
      opts.sim.latency.base = 5;
      opts.sim.latency.jitter = 30;  // Wide in-flight unlock windows.
      opts.mpl = 1;
      opts.think_time = 4;  // Re-issue almost immediately.
      opts.duration = 30'000;
      auto res = RunWorkload(sys, opts);
      ASSERT_TRUE(res.ok());
      EXPECT_FALSE(res->budget_exhausted)
          << ConflictPolicyName(policy) << " seed " << seed;
      EXPECT_FALSE(res->gave_up);
      EXPECT_FALSE(res->deadlocked);  // MPL 1: no circular wait possible.
      EXPECT_GT(res->commits, 0u);
      total_commits += res->commits;

      // Same seed, same session, bit for bit.
      auto replay = RunWorkload(sys, opts);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(replay->commits, res->commits);
      EXPECT_EQ(replay->aborts, res->aborts);
      EXPECT_EQ(replay->events, res->events);
      EXPECT_EQ(replay->makespan, res->makespan);
    }
    EXPECT_GT(total_commits, 0u) << ConflictPolicyName(policy);
  }
}

TEST(TxnExecutorTest, StateNames) {
  EXPECT_STREQ(TxnStateName(TxnState::kNotStarted), "not-started");
  EXPECT_STREQ(TxnStateName(TxnState::kRunning), "running");
  EXPECT_STREQ(TxnStateName(TxnState::kBackoff), "backoff");
  EXPECT_STREQ(TxnStateName(TxnState::kThinking), "thinking");
  EXPECT_STREQ(TxnStateName(TxnState::kCommitted), "committed");
  EXPECT_STREQ(TxnStateName(TxnState::kGaveUp), "gave-up");
}

}  // namespace
}  // namespace wydb
