// Shared helpers for the wydb test suites.
#ifndef WYDB_TESTS_TEST_UTIL_H_
#define WYDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/system.h"
#include "core/transaction.h"
#include "core/transaction_builder.h"

namespace wydb {
namespace testutil {

/// Database with entities spread over sites: spec like
/// {{"s1", {"x", "y"}}, {"s2", {"z"}}}.
inline std::unique_ptr<Database> MakeDb(
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        spec) {
  auto db = std::make_unique<Database>();
  for (const auto& [site, entities] : spec) {
    if (db->FindSite(site) == kInvalidSite) {
      auto s = db->AddSite(site);
      if (!s.ok()) std::abort();
    }
    for (const auto& e : entities) {
      auto r = db->AddEntityAtSite(e, site);
      if (!r.ok()) std::abort();
    }
  }
  return db;
}

/// Database where every entity lives at its own site (any DAG is then a
/// valid transaction).
inline std::unique_ptr<Database> MakeSpreadDb(
    const std::vector<std::string>& entities) {
  auto db = std::make_unique<Database>();
  for (const auto& e : entities) {
    auto r = db->AddEntityAtSite(e, "site_" + e);
    if (!r.ok()) std::abort();
  }
  return db;
}

/// Total-order transaction from tokens like {"Lx", "Sy", "Uy", "Ux"}.
/// Token = 'L' (exclusive lock), 'S' (shared lock) or 'U' (unlock)
/// followed by the entity name — the .wydb step syntax.
inline Transaction MakeSeq(const Database* db, const std::string& name,
                           const std::vector<std::string>& tokens) {
  TransactionBuilder b(db, name);
  int prev = -1;
  for (const auto& tok : tokens) {
    const std::string entity = tok.substr(1);
    int cur = tok[0] == 'L'   ? b.Lock(entity)
              : tok[0] == 'S' ? b.LockShared(entity)
                              : b.Unlock(entity);
    if (prev != -1) b.Arc(prev, cur);
    prev = cur;
  }
  auto t = b.Build();
  if (!t.ok()) std::abort();
  return std::move(*t);
}

/// System from already-built transactions.
inline TransactionSystem MakeSystem(const Database* db,
                                    std::vector<Transaction> txns) {
  auto sys = TransactionSystem::Create(db, std::move(txns));
  if (!sys.ok()) std::abort();
  return std::move(*sys);
}

/// The all-exclusive demotion of a system: identical transactions and
/// precedence arcs, every shared lock demoted to exclusive. The identity
/// transform on X-only systems; on mixed systems it only ADDS conflicts.
/// The returned system borrows the same Database as `sys`.
inline TransactionSystem DemoteToX(const TransactionSystem& sys) {
  std::vector<Transaction> txns;
  txns.reserve(sys.num_transactions());
  for (int i = 0; i < sys.num_transactions(); ++i) {
    const Transaction& t = sys.txn(i);
    std::vector<Step> steps;
    steps.reserve(t.num_steps());
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      Step s = t.step(v);
      s.mode = LockMode::kExclusive;
      steps.push_back(s);
    }
    std::vector<std::pair<int, int>> arcs;
    for (NodeId v = 0; v < t.num_steps(); ++v) {
      for (NodeId w : t.graph().OutNeighbors(v)) arcs.emplace_back(v, w);
    }
    auto nt = Transaction::Create(&sys.db(), t.name(), std::move(steps),
                                  std::move(arcs));
    if (!nt.ok()) std::abort();
    txns.push_back(std::move(*nt));
  }
  return MakeSystem(&sys.db(), std::move(txns));
}

}  // namespace testutil
}  // namespace wydb

#endif  // WYDB_TESTS_TEST_UTIL_H_
