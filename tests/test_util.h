// Shared helpers for the wydb test suites.
#ifndef WYDB_TESTS_TEST_UTIL_H_
#define WYDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/system.h"
#include "core/transaction.h"
#include "core/transaction_builder.h"

namespace wydb {
namespace testutil {

/// Database with entities spread over sites: spec like
/// {{"s1", {"x", "y"}}, {"s2", {"z"}}}.
inline std::unique_ptr<Database> MakeDb(
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        spec) {
  auto db = std::make_unique<Database>();
  for (const auto& [site, entities] : spec) {
    if (db->FindSite(site) == kInvalidSite) {
      auto s = db->AddSite(site);
      if (!s.ok()) std::abort();
    }
    for (const auto& e : entities) {
      auto r = db->AddEntityAtSite(e, site);
      if (!r.ok()) std::abort();
    }
  }
  return db;
}

/// Database where every entity lives at its own site (any DAG is then a
/// valid transaction).
inline std::unique_ptr<Database> MakeSpreadDb(
    const std::vector<std::string>& entities) {
  auto db = std::make_unique<Database>();
  for (const auto& e : entities) {
    auto r = db->AddEntityAtSite(e, "site_" + e);
    if (!r.ok()) std::abort();
  }
  return db;
}

/// Total-order transaction from tokens like {"Lx", "Ly", "Ux", "Uy"}.
/// Token = 'L' or 'U' followed by the entity name.
inline Transaction MakeSeq(const Database* db, const std::string& name,
                           const std::vector<std::string>& tokens) {
  std::vector<std::pair<StepKind, std::string>> seq;
  for (const auto& tok : tokens) {
    StepKind kind = tok[0] == 'L' ? StepKind::kLock : StepKind::kUnlock;
    seq.emplace_back(kind, tok.substr(1));
  }
  auto t = TransactionBuilder::FromSequence(db, name, seq);
  if (!t.ok()) std::abort();
  return std::move(*t);
}

/// System from already-built transactions.
inline TransactionSystem MakeSystem(const Database* db,
                                    std::vector<Transaction> txns) {
  auto sys = TransactionSystem::Create(db, std::move(txns));
  if (!sys.ok()) std::abort();
  return std::move(*sys);
}

}  // namespace testutil
}  // namespace wydb

#endif  // WYDB_TESTS_TEST_UTIL_H_
