// Experiment E6: runtime comparison of deadlock strategies — static
// prevention (run certified-safe workloads under pure blocking) versus
// the classic dynamic baselines (wait-for-graph detection, wound-wait,
// wait-die) on deadlock-prone workloads. Reported counters: deadlock
// rate, aborts, messages, simulated makespan.
#include <benchmark/benchmark.h>

#include "gen/system_gen.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

void RunPolicy(benchmark::State& state, const TransactionSystem& sys,
               ConflictPolicy policy) {
  uint64_t seed = 1;
  int runs = 0, deadlocks = 0, commits = 0;
  uint64_t aborts = 0, messages = 0;
  double makespan = 0;
  for (auto _ : state) {
    SimOptions opts;
    opts.policy = policy;
    opts.seed = seed++;
    auto res = RunSimulation(sys, opts);
    if (!res.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    ++runs;
    deadlocks += res->deadlocked ? 1 : 0;
    commits += res->all_committed ? 1 : 0;
    aborts += res->aborts;
    messages += res->messages;
    makespan += static_cast<double>(res->makespan);
    benchmark::DoNotOptimize(res);
  }
  state.counters["deadlock_rate"] =
      runs ? static_cast<double>(deadlocks) / runs : 0;
  state.counters["commit_rate"] =
      runs ? static_cast<double>(commits) / runs : 0;
  state.counters["aborts_per_run"] =
      runs ? static_cast<double>(aborts) / runs : 0;
  state.counters["msgs_per_run"] =
      runs ? static_cast<double>(messages) / runs : 0;
  state.counters["avg_makespan"] = runs ? makespan / runs : 0;
}

// Deadlock-prone contended workload: a k-ring.
void BM_Ring_Block(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Ring_Block)->DenseRange(2, 8, 2);

void BM_Ring_Detect(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Ring_Detect)->DenseRange(2, 8, 2);

void BM_Ring_WoundWait(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWoundWait);
}
BENCHMARK(BM_Ring_WoundWait)->DenseRange(2, 8, 2);

void BM_Ring_WaitDie(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWaitDie);
}
BENCHMARK(BM_Ring_WaitDie)->DenseRange(2, 8, 2);

// Certified-safe workload (latch discipline): pure blocking needs no
// detector and never deadlocks or aborts — the paper's prevention story.
void BM_Certified_Block(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Certified_Block)->DenseRange(2, 10, 2);

void BM_Certified_Detect(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Certified_Detect)->DenseRange(2, 10, 2);

// Random uncertified two-phase workload under all four policies.
void BM_Random2PL(benchmark::State& state) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = 4;
  auto sys = GenerateRandomSystem(gopts);
  RunPolicy(state, *sys->system,
            static_cast<ConflictPolicy>(state.range(0)));
}
BENCHMARK(BM_Random2PL)
    ->Arg(static_cast<int>(ConflictPolicy::kBlock))
    ->Arg(static_cast<int>(ConflictPolicy::kWoundWait))
    ->Arg(static_cast<int>(ConflictPolicy::kWaitDie))
    ->Arg(static_cast<int>(ConflictPolicy::kDetect));

}  // namespace
}  // namespace wydb
