// Experiment E6: runtime comparison of deadlock strategies — static
// prevention (run certified-safe workloads under pure blocking) versus
// the classic dynamic baselines (wait-for-graph detection, wound-wait,
// wait-die) on deadlock-prone workloads. Reported counters: deadlock
// rate, aborts, messages, simulated makespan.
#include <benchmark/benchmark.h>

#include <cmath>

#include "gen/system_gen.h"
#include "runtime/live_engine.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"

namespace wydb {
namespace {

void RunPolicy(benchmark::State& state, const TransactionSystem& sys,
               ConflictPolicy policy) {
  uint64_t seed = 1;
  int runs = 0, deadlocks = 0, commits = 0;
  uint64_t aborts = 0, messages = 0, events = 0;
  double makespan = 0;
  for (auto _ : state) {
    SimOptions opts;
    opts.policy = policy;
    opts.seed = seed++;
    auto res = RunSimulation(sys, opts);
    if (!res.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    ++runs;
    deadlocks += res->deadlocked ? 1 : 0;
    commits += res->all_committed ? 1 : 0;
    aborts += res->aborts;
    messages += res->messages;
    events += res->events;
    makespan += static_cast<double>(res->makespan);
    benchmark::DoNotOptimize(res);
  }
  state.counters["deadlock_rate"] =
      runs ? static_cast<double>(deadlocks) / runs : 0;
  state.counters["commit_rate"] =
      runs ? static_cast<double>(commits) / runs : 0;
  state.counters["aborts_per_run"] =
      runs ? static_cast<double>(aborts) / runs : 0;
  state.counters["msgs_per_run"] =
      runs ? static_cast<double>(messages) / runs : 0;
  state.counters["avg_makespan"] = runs ? makespan / runs : 0;
  // Kernel hot-path speed: simulation events dispatched per wall second.
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// Closed-loop traffic sessions: one seeded session per iteration.
void RunTraffic(benchmark::State& state, const TransactionSystem& sys,
                ConflictPolicy policy, SimTime duration,
                const CopyPlacement* placement = nullptr) {
  uint64_t seed = 1;
  uint64_t commits = 0, aborts = 0, events = 0;
  double p99 = 0, throughput = 0;
  int runs = 0;
  for (auto _ : state) {
    WorkloadOptions opts;
    opts.sim.policy = policy;
    opts.sim.seed = seed++;
    opts.sim.max_events = 0;
    opts.sim.placement = placement;
    opts.duration = duration;
    opts.think_time = 50;
    auto res = RunWorkload(sys, opts);
    if (!res.ok()) {
      state.SkipWithError("workload failed");
      return;
    }
    ++runs;
    commits += res->commits;
    aborts += res->aborts;
    events += res->events;
    throughput += res->throughput;
    p99 += static_cast<double>(res->latency.p99);
    benchmark::DoNotOptimize(res);
  }
  state.counters["commits_per_run"] =
      runs ? static_cast<double>(commits) / runs : 0;
  state.counters["sim_throughput"] = runs ? throughput / runs : 0;
  state.counters["abort_rate"] =
      (commits + aborts)
          ? static_cast<double>(aborts) / static_cast<double>(commits + aborts)
          : 0;
  state.counters["latency_p99"] = runs ? p99 / runs : 0;
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// Deadlock-prone contended workload: a k-ring.
void BM_Ring_Block(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Ring_Block)->DenseRange(2, 8, 2);

void BM_Ring_Detect(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Ring_Detect)->DenseRange(2, 8, 2);

void BM_Ring_WoundWait(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWoundWait);
}
BENCHMARK(BM_Ring_WoundWait)->DenseRange(2, 8, 2);

void BM_Ring_WaitDie(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWaitDie);
}
BENCHMARK(BM_Ring_WaitDie)->DenseRange(2, 8, 2);

// Certified-safe workload (latch discipline): pure blocking needs no
// detector and never deadlocks or aborts — the paper's prevention story.
void BM_Certified_Block(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Certified_Block)->DenseRange(2, 10, 2);

void BM_Certified_Detect(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Certified_Detect)->DenseRange(2, 10, 2);

// Random uncertified two-phase workload under all four policies.
void BM_Random2PL(benchmark::State& state) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = 4;
  auto sys = GenerateRandomSystem(gopts);
  RunPolicy(state, *sys->system,
            static_cast<ConflictPolicy>(state.range(0)));
}
BENCHMARK(BM_Random2PL)
    ->Arg(static_cast<int>(ConflictPolicy::kBlock))
    ->Arg(static_cast<int>(ConflictPolicy::kWoundWait))
    ->Arg(static_cast<int>(ConflictPolicy::kWaitDie))
    ->Arg(static_cast<int>(ConflictPolicy::kDetect));

// Closed-loop throughput series: certified-safe workload under pure
// blocking sustains traffic with zero aborts; the range is the number of
// transactions (clients).
void BM_ClosedLoop_Certified_Block(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunTraffic(state, *sys->system, ConflictPolicy::kBlock, 50'000);
}
BENCHMARK(BM_ClosedLoop_Certified_Block)->DenseRange(2, 10, 2);

// Deadlock-prone contended traffic under the dynamic baselines.
void BM_ClosedLoop_Ring(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunTraffic(state, *ring->system,
             static_cast<ConflictPolicy>(state.range(1)), 50'000);
}
BENCHMARK(BM_ClosedLoop_Ring)
    ->ArgsProduct({{3, 6},
                   {static_cast<int>(ConflictPolicy::kDetect),
                    static_cast<int>(ConflictPolicy::kWoundWait),
                    static_cast<int>(ConflictPolicy::kWaitDie)}});

// Random two-phase contended traffic.
void BM_ClosedLoop_Random2PL(benchmark::State& state) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = 4;
  auto sys = GenerateRandomSystem(gopts);
  RunTraffic(state, *sys->system,
             static_cast<ConflictPolicy>(state.range(0)), 50'000);
}
BENCHMARK(BM_ClosedLoop_Random2PL)
    ->Arg(static_cast<int>(ConflictPolicy::kWoundWait))
    ->Arg(static_cast<int>(ConflictPolicy::kWaitDie))
    ->Arg(static_cast<int>(ConflictPolicy::kDetect));

// Replicated traffic (DESIGN.md §6): a certified identical-copies farm
// under pure blocking across replication degrees — the write-all fan-out
// cost in messages/latency, with zero deadlocks by construction. Range:
// (workers, degree).
void BM_ClosedLoop_Replicated_Farm(benchmark::State& state) {
  ReplicatedFarmOptions fopts;
  fopts.workers = static_cast<int>(state.range(0));
  fopts.entities = 3;
  fopts.degree = static_cast<int>(state.range(1));
  auto farm = GenerateReplicatedFarm(fopts);
  RunTraffic(state, *farm->system, ConflictPolicy::kBlock, 50'000,
             farm->placement.get());
}
BENCHMARK(BM_ClosedLoop_Replicated_Farm)
    ->ArgsProduct({{4, 8}, {1, 2, 3}});

// Deadlock-prone replicated ring under the detector: replication widens
// the in-flight message window the detector has to see through.
void BM_ClosedLoop_Replicated_Ring(benchmark::State& state) {
  auto ring = GenerateReplicatedRingSystem(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  RunTraffic(state, *ring->system, ConflictPolicy::kDetect, 50'000,
             ring->placement.get());
}
BENCHMARK(BM_ClosedLoop_Replicated_Ring)->ArgsProduct({{4}, {1, 2, 3}});

// --- Live engine (DESIGN.md §10): real threads, wall-clock time. ------

// Certified latch-discipline workload on the wall-clock engine: the
// detection-free fast path (kBlock) against the dynamic baselines
// (kDetect's scan-on-block waiters, kWoundWait's timestamp aborts) at
// 1/2/4 worker threads. The guarded counters are lock_ops_per_sec and
// commits_per_sec (higher is better — tools/compare_bench.py knows the
// direction); the fast path must not lose them to the baselines.
//
// The system is 16 certified transactions over a 64 Ki-entity database:
// a production-sized lock table. That size is the detection baseline's
// structural cost — every wait-for snapshot latches the whole striped
// table (the same global-snapshot semantics as the simulator's
// DetectAndResolve, which the cross-validation suite depends on), so a
// scan costs Θ(table), ~0.5 ms here, while the certified fast path's
// per-op cost never depends on the table size. Parks (and hence scans)
// are driven by holders preempted mid-critical-section, so the margin
// grows with runnable threads: ~49% at 4 threads in the committed
// recording; at 2 threads the host's scheduler caps the park rate low
// enough that the series records a statistical tie. kWoundWait's cost
// is wasted work instead: its policy aborts (17% of rounds at 4
// threads) throw away partially-done rounds, which hits commits_per_sec
// hardest (a doomed attempt's grants still count as raw lock ops).
void RunLiveBench(benchmark::State& state, ConflictPolicy policy,
                  int64_t detect_interval_us) {
  SafeSystemOptions gopts;
  gopts.num_transactions = 16;
  gopts.num_sites = 64;
  gopts.entities_per_site = 1024;
  gopts.entities_per_txn = 6;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  const int threads = static_cast<int>(state.range(0));
  uint64_t seed = 1;
  uint64_t commits = 0, lock_ops = 0, aborts = 0, detector_runs = 0;
  for (auto _ : state) {
    LiveOptions opts;
    opts.policy = policy;
    opts.seed = seed++;
    opts.threads = threads;
    opts.rounds = 10;
    // Busy per-lock work keeps holders runnable: on a saturated machine
    // they get preempted mid-critical-section, waiters genuinely park,
    // and the policies' conflict machinery actually runs.
    opts.work_us = 30;
    opts.think_us = 20;
    opts.detect_interval_us = detect_interval_us;
    auto res = RunLive(*sys->system, opts);
    if (!res.ok() || !res->completed || res->deadlocked) {
      state.SkipWithError("live run failed");
      return;
    }
    commits += res->commits;
    lock_ops += res->lock_ops;
    aborts += res->aborts;
    detector_runs += res->detector_runs;
    benchmark::DoNotOptimize(res);
  }
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
  state.counters["lock_ops_per_sec"] = benchmark::Counter(
      static_cast<double>(lock_ops), benchmark::Counter::kIsRate);
  state.counters["live_abort_rate"] =
      (commits + aborts)
          ? static_cast<double>(aborts) / static_cast<double>(commits + aborts)
          : 0;
  state.counters["detector_runs"] = static_cast<double>(detector_runs);
}

void BM_Live_Certified_FastPath(benchmark::State& state) {
  RunLiveBench(state, ConflictPolicy::kBlock, 2000);
}
BENCHMARK(BM_Live_Certified_FastPath)
    ->Arg(1)->Arg(2)->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The detection baseline scans the wait-for graph on every lock wait
// (the industrial scan-on-block scheme) — the certified fast path's
// whole pitch is that this work, pure overhead on a deadlock-free
// workload, never needs to run.
void BM_Live_Certified_Detect(benchmark::State& state) {
  RunLiveBench(state, ConflictPolicy::kDetect, 2000);
}
BENCHMARK(BM_Live_Certified_Detect)
    ->Arg(1)->Arg(2)->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_Live_Certified_WoundWait(benchmark::State& state) {
  RunLiveBench(state, ConflictPolicy::kWoundWait, 2000);
}
BENCHMARK(BM_Live_Certified_WoundWait)
    ->Arg(1)->Arg(2)->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Live-vs-sim cross-validation as a recorded series: each iteration
// runs the same rounds-bounded certified session on the wall-clock
// engine and the discrete-event simulator and reports the absolute
// commit/abort disagreement, which must stay 0.000 in the committed
// baseline (both engines drive the identical TxnState machine).
void BM_Live_Vs_Sim_Agreement(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = 8;
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  uint64_t seed = 1;
  double disagreement = 0;
  uint64_t commits = 0;
  for (auto _ : state) {
    LiveOptions lopts;
    lopts.policy = ConflictPolicy::kBlock;
    lopts.seed = seed;
    lopts.rounds = 25;
    auto live = RunLive(*sys->system, lopts);
    WorkloadOptions wopts;
    wopts.sim.policy = ConflictPolicy::kBlock;
    wopts.sim.seed = seed;
    wopts.duration = 0;
    wopts.rounds = 25;
    auto sim = RunWorkload(*sys->system, wopts);
    ++seed;
    if (!live.ok() || !sim.ok() || !live->completed) {
      state.SkipWithError("engine run failed");
      return;
    }
    disagreement +=
        std::fabs(static_cast<double>(live->commits) -
                  static_cast<double>(sim->commits)) +
        std::fabs(static_cast<double>(live->aborts) -
                  static_cast<double>(sim->aborts));
    commits += live->commits;
    benchmark::DoNotOptimize(live);
    benchmark::DoNotOptimize(sim);
  }
  state.counters["live_sim_disagreement"] = disagreement;
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(commits), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Live_Vs_Sim_Agreement)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace
}  // namespace wydb
