// Experiment E6: runtime comparison of deadlock strategies — static
// prevention (run certified-safe workloads under pure blocking) versus
// the classic dynamic baselines (wait-for-graph detection, wound-wait,
// wait-die) on deadlock-prone workloads. Reported counters: deadlock
// rate, aborts, messages, simulated makespan.
#include <benchmark/benchmark.h>

#include "gen/system_gen.h"
#include "runtime/simulation.h"
#include "runtime/workload.h"

namespace wydb {
namespace {

void RunPolicy(benchmark::State& state, const TransactionSystem& sys,
               ConflictPolicy policy) {
  uint64_t seed = 1;
  int runs = 0, deadlocks = 0, commits = 0;
  uint64_t aborts = 0, messages = 0, events = 0;
  double makespan = 0;
  for (auto _ : state) {
    SimOptions opts;
    opts.policy = policy;
    opts.seed = seed++;
    auto res = RunSimulation(sys, opts);
    if (!res.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    ++runs;
    deadlocks += res->deadlocked ? 1 : 0;
    commits += res->all_committed ? 1 : 0;
    aborts += res->aborts;
    messages += res->messages;
    events += res->events;
    makespan += static_cast<double>(res->makespan);
    benchmark::DoNotOptimize(res);
  }
  state.counters["deadlock_rate"] =
      runs ? static_cast<double>(deadlocks) / runs : 0;
  state.counters["commit_rate"] =
      runs ? static_cast<double>(commits) / runs : 0;
  state.counters["aborts_per_run"] =
      runs ? static_cast<double>(aborts) / runs : 0;
  state.counters["msgs_per_run"] =
      runs ? static_cast<double>(messages) / runs : 0;
  state.counters["avg_makespan"] = runs ? makespan / runs : 0;
  // Kernel hot-path speed: simulation events dispatched per wall second.
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// Closed-loop traffic sessions: one seeded session per iteration.
void RunTraffic(benchmark::State& state, const TransactionSystem& sys,
                ConflictPolicy policy, SimTime duration,
                const CopyPlacement* placement = nullptr) {
  uint64_t seed = 1;
  uint64_t commits = 0, aborts = 0, events = 0;
  double p99 = 0, throughput = 0;
  int runs = 0;
  for (auto _ : state) {
    WorkloadOptions opts;
    opts.sim.policy = policy;
    opts.sim.seed = seed++;
    opts.sim.max_events = 0;
    opts.sim.placement = placement;
    opts.duration = duration;
    opts.think_time = 50;
    auto res = RunWorkload(sys, opts);
    if (!res.ok()) {
      state.SkipWithError("workload failed");
      return;
    }
    ++runs;
    commits += res->commits;
    aborts += res->aborts;
    events += res->events;
    throughput += res->throughput;
    p99 += static_cast<double>(res->latency.p99);
    benchmark::DoNotOptimize(res);
  }
  state.counters["commits_per_run"] =
      runs ? static_cast<double>(commits) / runs : 0;
  state.counters["sim_throughput"] = runs ? throughput / runs : 0;
  state.counters["abort_rate"] =
      (commits + aborts)
          ? static_cast<double>(aborts) / static_cast<double>(commits + aborts)
          : 0;
  state.counters["latency_p99"] = runs ? p99 / runs : 0;
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}

// Deadlock-prone contended workload: a k-ring.
void BM_Ring_Block(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Ring_Block)->DenseRange(2, 8, 2);

void BM_Ring_Detect(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Ring_Detect)->DenseRange(2, 8, 2);

void BM_Ring_WoundWait(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWoundWait);
}
BENCHMARK(BM_Ring_WoundWait)->DenseRange(2, 8, 2);

void BM_Ring_WaitDie(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunPolicy(state, *ring->system, ConflictPolicy::kWaitDie);
}
BENCHMARK(BM_Ring_WaitDie)->DenseRange(2, 8, 2);

// Certified-safe workload (latch discipline): pure blocking needs no
// detector and never deadlocks or aborts — the paper's prevention story.
void BM_Certified_Block(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kBlock);
}
BENCHMARK(BM_Certified_Block)->DenseRange(2, 10, 2);

void BM_Certified_Detect(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunPolicy(state, *sys->system, ConflictPolicy::kDetect);
}
BENCHMARK(BM_Certified_Detect)->DenseRange(2, 10, 2);

// Random uncertified two-phase workload under all four policies.
void BM_Random2PL(benchmark::State& state) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = 4;
  auto sys = GenerateRandomSystem(gopts);
  RunPolicy(state, *sys->system,
            static_cast<ConflictPolicy>(state.range(0)));
}
BENCHMARK(BM_Random2PL)
    ->Arg(static_cast<int>(ConflictPolicy::kBlock))
    ->Arg(static_cast<int>(ConflictPolicy::kWoundWait))
    ->Arg(static_cast<int>(ConflictPolicy::kWaitDie))
    ->Arg(static_cast<int>(ConflictPolicy::kDetect));

// Closed-loop throughput series: certified-safe workload under pure
// blocking sustains traffic with zero aborts; the range is the number of
// transactions (clients).
void BM_ClosedLoop_Certified_Block(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.entities_per_txn = 3;
  gopts.seed = 2;
  auto sys = GenerateSafeSystem(gopts);
  RunTraffic(state, *sys->system, ConflictPolicy::kBlock, 50'000);
}
BENCHMARK(BM_ClosedLoop_Certified_Block)->DenseRange(2, 10, 2);

// Deadlock-prone contended traffic under the dynamic baselines.
void BM_ClosedLoop_Ring(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  RunTraffic(state, *ring->system,
             static_cast<ConflictPolicy>(state.range(1)), 50'000);
}
BENCHMARK(BM_ClosedLoop_Ring)
    ->ArgsProduct({{3, 6},
                   {static_cast<int>(ConflictPolicy::kDetect),
                    static_cast<int>(ConflictPolicy::kWoundWait),
                    static_cast<int>(ConflictPolicy::kWaitDie)}});

// Random two-phase contended traffic.
void BM_ClosedLoop_Random2PL(benchmark::State& state) {
  RandomSystemOptions gopts;
  gopts.num_transactions = 6;
  gopts.entities_per_txn = 3;
  gopts.num_sites = 3;
  gopts.entities_per_site = 3;
  gopts.two_phase = true;
  gopts.seed = 4;
  auto sys = GenerateRandomSystem(gopts);
  RunTraffic(state, *sys->system,
             static_cast<ConflictPolicy>(state.range(0)), 50'000);
}
BENCHMARK(BM_ClosedLoop_Random2PL)
    ->Arg(static_cast<int>(ConflictPolicy::kWoundWait))
    ->Arg(static_cast<int>(ConflictPolicy::kWaitDie))
    ->Arg(static_cast<int>(ConflictPolicy::kDetect));

// Replicated traffic (DESIGN.md §6): a certified identical-copies farm
// under pure blocking across replication degrees — the write-all fan-out
// cost in messages/latency, with zero deadlocks by construction. Range:
// (workers, degree).
void BM_ClosedLoop_Replicated_Farm(benchmark::State& state) {
  ReplicatedFarmOptions fopts;
  fopts.workers = static_cast<int>(state.range(0));
  fopts.entities = 3;
  fopts.degree = static_cast<int>(state.range(1));
  auto farm = GenerateReplicatedFarm(fopts);
  RunTraffic(state, *farm->system, ConflictPolicy::kBlock, 50'000,
             farm->placement.get());
}
BENCHMARK(BM_ClosedLoop_Replicated_Farm)
    ->ArgsProduct({{4, 8}, {1, 2, 3}});

// Deadlock-prone replicated ring under the detector: replication widens
// the in-flight message window the detector has to see through.
void BM_ClosedLoop_Replicated_Ring(benchmark::State& state) {
  auto ring = GenerateReplicatedRingSystem(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(1)));
  RunTraffic(state, *ring->system, ConflictPolicy::kDetect, 50'000,
             ring->placement.get());
}
BENCHMARK(BM_ClosedLoop_Replicated_Ring)->ArgsProduct({{4}, {1, 2, 3}});

}  // namespace
}  // namespace wydb
