// Microbenchmarks for the interned-state search substrate: state
// interning, incremental move generation vs the naive rescan, and the
// exact checkers under both engines (the incremental-arc cycle path is
// exercised by the SafeDf series). Baseline numbers are recorded in
// BENCH_statespace.json at the repo root.
#include <benchmark/benchmark.h>

#include <vector>

#include "analysis/deadlock_checker.h"
#include "analysis/safety_checker.h"
#include "analysis/sat/dpll.h"
#include "common/random.h"
#include "core/state_space.h"
#include "core/state_store.h"
#include "gen/system_gen.h"

namespace wydb {
namespace {

OwnedSystem SameOrderPair(int entities) {
  RandomSystemOptions opts;
  opts.num_sites = 1;
  opts.entities_per_site = entities;
  opts.num_transactions = 2;
  opts.entities_per_txn = entities;
  opts.two_phase = false;
  opts.seed = 5;
  auto sys = GenerateRandomSystem(opts);
  if (!sys.ok()) std::abort();
  return std::move(*sys);
}

// ---------------------------------------------------------------------
// StateStore: raw intern throughput (50% hit rate on re-intern pass).

void BM_StateStoreIntern(benchmark::State& state) {
  const int kKeyWords = 4;
  const int n = static_cast<int>(state.range(0));
  Rng rng(99);
  std::vector<uint64_t> keys(static_cast<size_t>(n) * kKeyWords);
  for (auto& w : keys) w = rng.Next();
  for (auto _ : state) {
    StateStore store(kKeyWords);
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          store.Intern(keys.data() + static_cast<size_t>(i) * kKeyWords));
    }
    // Second pass: all hits.
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          store.Intern(keys.data() + static_cast<size_t>(i) * kKeyWords));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_StateStoreIntern)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------
// Move generation: naive full rescan vs incremental frontier walk, over
// the same fixed random walk through a mid-sized system.

struct WalkFixture {
  OwnedSystem sys;
  StateSpace space;
  std::vector<ExecState> states;                // Naive representation.
  std::vector<std::vector<uint64_t>> auxes;     // Incremental caches.

  explicit WalkFixture(int entities)
      : sys(SameOrderPair(entities)), space(sys.system.get()) {
    const int kw = space.words_per_state();
    const int aw = space.aux_words();
    ExecState s = space.EmptyState();
    std::vector<uint64_t> aux(aw), next_aux(aw), next_state(kw);
    space.InitAux(s.words.data(), aux.data());
    Rng rng(7);
    while (true) {
      states.push_back(s);
      auxes.push_back(aux);
      std::vector<GlobalNode> moves = space.LegalMoves(s);
      if (moves.empty()) break;
      GlobalNode g = moves[rng.NextBelow(moves.size())];
      space.ApplyInto(s.words.data(), aux.data(), g, next_state.data(),
                      next_aux.data());
      s.words.assign(next_state.begin(), next_state.end());
      aux = next_aux;
    }
  }
};

void BM_MoveGen_Naive(benchmark::State& state) {
  WalkFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const ExecState& s : f.states) {
      std::vector<GlobalNode> moves = f.space.LegalMoves(s);
      benchmark::DoNotOptimize(moves);
    }
  }
  state.SetItemsProcessed(state.iterations() * f.states.size());
}
BENCHMARK(BM_MoveGen_Naive)->Arg(8)->Arg(16);

void BM_MoveGen_Incremental(benchmark::State& state) {
  WalkFixture f(static_cast<int>(state.range(0)));
  std::vector<GlobalNode> moves;
  for (auto _ : state) {
    for (const auto& aux : f.auxes) {
      moves.clear();
      f.space.ExpandInto(aux.data(), &moves);
      benchmark::DoNotOptimize(moves);
    }
  }
  state.SetItemsProcessed(state.iterations() * f.auxes.size());
}
BENCHMARK(BM_MoveGen_Incremental)->Arg(8)->Arg(16);

// ---------------------------------------------------------------------
// End-to-end: exact checkers under both engines. The ns/state contrast is
// the headline number of this substrate (ISSUE 1 acceptance).

void RunDeadlockBench(benchmark::State& state, SearchEngine engine) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  DeadlockCheckOptions opts;
  opts.engine = engine;
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys.system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_DeadlockCheck_Naive(benchmark::State& state) {
  RunDeadlockBench(state, SearchEngine::kNaiveReference);
}
BENCHMARK(BM_DeadlockCheck_Naive)->DenseRange(4, 8, 2);

void BM_DeadlockCheck_Incremental(benchmark::State& state) {
  RunDeadlockBench(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_DeadlockCheck_Incremental)->DenseRange(4, 8, 2);

// The exploding-workload contrasts (disjoint grid, shared chain) live in
// bench_checker.cc as BM_ExactDeadlockCheck_StuckState_Grid{,_Seed} and
// BM_ExactSafeDfCheck_Chain{,_Seed}; they are deliberately not duplicated
// here.

// ---------------------------------------------------------------------
// Thread scaling on the exploding disjoint-grid deadlock series (ISSUE 4
// acceptance series): k transactions over disjoint entities visit
// (2*entities+1)^k states, so per-state work dominates and the sharded
// parallel engine's speedup is directly visible in ns_per_state. Results
// are bit-identical to the serial engines at every thread count
// (property-tested); only the wall clock may differ. On a single-core
// host the >1-thread rows measure determinism overhead, not scaling —
// compare against the recording context's num_cpus.

void RunGridDeadlockBench(benchmark::State& state, SearchEngine engine) {
  const int k = static_cast<int>(state.range(0));
  auto sys = GenerateDisjointGridSystem(k, /*entities_per_txn=*/3);
  if (!sys.ok()) std::abort();
  DeadlockCheckOptions opts;
  opts.engine = engine;
  opts.search_threads = static_cast<int>(state.range(1));
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys->system, opts);
    if (!report.ok() || !report->deadlock_free) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  // Wall-clock ns/state (UseRealTime below): the scaling metric. The
  // default CPU-time rate would only meter the calling thread and
  // overstate multi-thread runs.
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_GridDeadlock_Incremental(benchmark::State& state) {
  RunGridDeadlockBench(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_GridDeadlock_Incremental)
    ->Args({4, 0})
    ->Args({5, 0})
    ->UseRealTime();

// Second arg = worker threads of the sharded engine.
void BM_GridDeadlock_ParallelSharded(benchmark::State& state) {
  RunGridDeadlockBench(state, SearchEngine::kParallelSharded);
}
BENCHMARK(BM_GridDeadlock_ParallelSharded)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->UseRealTime();

// Commutativity-reduced engine on the same grid (DESIGN.md §8): every
// grid move is on a private entity, so the persistent singleton
// collapses (2*entities+1)^k states to the single 2*entities*k path —
// the `states` counter is the headline, not ns/state.
void BM_GridDeadlock_Reduced(benchmark::State& state) {
  RunGridDeadlockBench(state, SearchEngine::kReduced);
}
BENCHMARK(BM_GridDeadlock_Reduced)
    ->Args({4, 1})
    ->Args({5, 1})
    ->Args({5, 4})
    ->UseRealTime();

// ---------------------------------------------------------------------
// Large-symmetric series (ISSUE 5 acceptance): k identical latch-ordered
// workers over shared entities (the certified replicated-farm template,
// degree 1). The exhaustive engines intern ~(2.5k+1)*2^k states — the
// completed-worker *subsets* — while orbit canonicalization tracks only
// completed-worker *counts* (~6k states). The 2M state budget is the
// series' point: at k=16 (~2.69M reachable states) every exhaustive
// engine dies with ResourceExhausted (recorded as an error row) and
// only kReduced finishes.

void RunFarmDeadlockBench(benchmark::State& state, SearchEngine engine) {
  ReplicatedFarmOptions fopts;
  fopts.workers = static_cast<int>(state.range(0));
  fopts.entities = 3;
  fopts.degree = 1;
  fopts.certified = true;
  auto sys = GenerateReplicatedFarm(fopts);
  if (!sys.ok()) std::abort();
  DeadlockCheckOptions opts;
  opts.engine = engine;
  opts.search_threads = static_cast<int>(state.range(1));
  opts.max_states = 2'000'000;
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys->system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    if (!report->deadlock_free) {
      // The certified farm is deadlock-free by construction — this is a
      // soundness regression, not the series' expected budget error.
      state.SkipWithError("wrong verdict");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_FarmDeadlock_Incremental(benchmark::State& state) {
  RunFarmDeadlockBench(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_FarmDeadlock_Incremental)
    ->Args({8, 0})
    ->Args({12, 0})
    ->Args({16, 0})
    ->UseRealTime();

void BM_FarmDeadlock_ParallelSharded(benchmark::State& state) {
  RunFarmDeadlockBench(state, SearchEngine::kParallelSharded);
}
BENCHMARK(BM_FarmDeadlock_ParallelSharded)
    ->Args({8, 2})
    ->Args({16, 2})
    ->UseRealTime();

void BM_FarmDeadlock_Reduced(benchmark::State& state) {
  RunFarmDeadlockBench(state, SearchEngine::kReduced);
}
BENCHMARK(BM_FarmDeadlock_Reduced)
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({12, 1})
    ->Args({16, 1})
    ->Args({16, 4})
    ->UseRealTime();

// ---------------------------------------------------------------------
// Memory-mode series (ISSUE 6 acceptance, DESIGN.md §9): the k=16 farm
// (2,686,976 reachable states — beyond the 2M budget that kills the
// exhaustive engines above) checked exhaustively under a fixed 64 MiB
// `--mem-budget-mb`-style frontier budget, once per key encoding. The
// headline counter is bytes_per_state: delta must be strictly below
// plain, and compact (frontier-resident keys only; non-certified
// verdict) far below both. spilled_levels > 0 records that the run was
// disk-bounded, not RAM-bounded.

void RunFarmMemoryBench(benchmark::State& state,
                        StoreOptions::KeyEncoding encoding) {
  ReplicatedFarmOptions fopts;
  fopts.workers = static_cast<int>(state.range(0));
  fopts.entities = 3;
  fopts.degree = 1;
  fopts.certified = true;
  auto sys = GenerateReplicatedFarm(fopts);
  if (!sys.ok()) std::abort();
  DeadlockCheckOptions opts;
  opts.engine = SearchEngine::kParallelSharded;
  opts.search_threads = static_cast<int>(state.range(1));
  opts.max_states = 4'000'000;
  opts.store.encoding = encoding;
  opts.store.mem_budget_mb = 64;
  uint64_t states = 0;
  uint64_t interned = 0;
  uint64_t store_bytes = 0;
  uint64_t spilled = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys->system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    if (!report->deadlock_free) {
      state.SkipWithError("wrong verdict");
      break;
    }
    states = report->states_visited;
    interned = report->states_interned;
    store_bytes = report->store_bytes;
    spilled = report->spilled_levels;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["bytes_per_state"] =
      static_cast<double>(store_bytes) /
      static_cast<double>(interned > 0 ? interned : 1);
  state.counters["spilled_levels"] = static_cast<double>(spilled);
}

void BM_FarmDeadlockMem_Plain(benchmark::State& state) {
  RunFarmMemoryBench(state, StoreOptions::KeyEncoding::kPlain);
}
BENCHMARK(BM_FarmDeadlockMem_Plain)->Args({16, 2})->UseRealTime();

void BM_FarmDeadlockMem_Delta(benchmark::State& state) {
  RunFarmMemoryBench(state, StoreOptions::KeyEncoding::kDelta);
}
BENCHMARK(BM_FarmDeadlockMem_Delta)->Args({16, 2})->UseRealTime();

void BM_FarmDeadlockMem_Compact(benchmark::State& state) {
  RunFarmMemoryBench(state, StoreOptions::KeyEncoding::kCompact);
}
BENCHMARK(BM_FarmDeadlockMem_Compact)->Args({16, 2})->UseRealTime();

void RunSafeDfBench(benchmark::State& state, SearchEngine engine) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  SafetyCheckOptions opts;
  opts.engine = engine;
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckSafeAndDeadlockFree(*sys.system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_SafeDfCheck_Naive(benchmark::State& state) {
  RunSafeDfBench(state, SearchEngine::kNaiveReference);
}
BENCHMARK(BM_SafeDfCheck_Naive)->DenseRange(3, 6, 1);

void BM_SafeDfCheck_Incremental(benchmark::State& state) {
  RunSafeDfBench(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_SafeDfCheck_Incremental)->DenseRange(3, 6, 1);

// ---------------------------------------------------------------------
// Watched-literal DPLL on pigeonhole formulas (exponentially many
// conflicts: pure propagation stress).

void BM_DpllPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  CnfFormula f;
  auto var = [&](int i, int h) { return i * holes + h; };
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Literal> clause;
    for (int h = 0; h < holes; ++h) clause.push_back({var(i, h), true});
    f.AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        f.AddClause({{var(i, h), false}, {var(j, h), false}});
      }
    }
  }
  uint64_t decisions = 0;
  for (auto _ : state) {
    auto r = SolveDpll(f);
    if (!r.ok() || r->satisfiable) {
      state.SkipWithError("unexpected");
      break;
    }
    decisions = r->decisions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["decisions"] = static_cast<double>(decisions);
}
BENCHMARK(BM_DpllPigeonhole)->DenseRange(5, 7, 1);

}  // namespace
}  // namespace wydb
