// Experiment E1 (and the cost side of Theorem 1/2): the exact deadlock
// checkers blow up exponentially with transaction size — the reason the
// paper's polynomial safe+DF tests matter. Includes the two detection
// modes, the memoization ablation (DESIGN.md §5.2), and the paper-figure
// systems as fixed cases.
#include <benchmark/benchmark.h>

#include "analysis/deadlock_checker.h"
#include "analysis/multi_analyzer.h"
#include "analysis/safety_checker.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

// A deadlock-free pair with n shared entities locked in the same order but
// with parallel per-entity chains — the state space grows exponentially
// with n although the answer is trivially "deadlock-free".
OwnedSystem SameOrderPair(int entities) {
  RandomSystemOptions opts;
  opts.num_sites = 1;
  opts.entities_per_site = entities;
  opts.num_transactions = 2;
  opts.entities_per_txn = entities;
  opts.two_phase = false;
  opts.seed = 5;
  auto sys = GenerateRandomSystem(opts);
  if (!sys.ok()) std::abort();
  return std::move(*sys);
}

void BM_ExactDeadlockCheck_StuckState(benchmark::State& state) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys.system);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_ExactDeadlockCheck_StuckState)->DenseRange(2, 6, 1);

void BM_ExactDeadlockCheck_ReductionGraph(benchmark::State& state) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  DeadlockCheckOptions opts;
  opts.mode = DeadlockDetectionMode::kReductionGraph;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys.system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ExactDeadlockCheck_ReductionGraph)->DenseRange(2, 5, 1);

// Ablation: turning memoization off revisits states along every path.
void BM_ExactDeadlockCheck_NoMemo(benchmark::State& state) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  DeadlockCheckOptions opts;
  opts.memoize = false;
  opts.max_states = 50'000'000;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys.system, opts);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ExactDeadlockCheck_NoMemo)->DenseRange(2, 4, 1);

void BM_ExactSafeDfCheck(benchmark::State& state) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = CheckSafeAndDeadlockFree(*sys.system);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ExactSafeDfCheck)->DenseRange(2, 5, 1);

// Fixed paper-figure cases (F1, F2): microbenchmarks of the exact checker
// on the exact systems from the paper.
void BM_Figure1System(benchmark::State& state) {
  auto db = testutil::MakeDb({{"s1", {"x", "z"}}, {"s2", {"y"}}});
  std::vector<Transaction> txns;
  txns.push_back(testutil::MakeSeq(db.get(), "T1", {"Ly", "Lz", "Uy", "Uz"}));
  txns.push_back(testutil::MakeSeq(db.get(), "T2", {"Lx", "Ly", "Ux", "Uy"}));
  txns.push_back(testutil::MakeSeq(db.get(), "T3", {"Lz", "Lx", "Uz", "Ux"}));
  TransactionSystem sys = testutil::MakeSystem(db.get(), std::move(txns));
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(sys);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Figure1System);

void BM_Figure2System(benchmark::State& state) {
  auto db = testutil::MakeSpreadDb({"v", "t", "z", "w"});
  auto make = [&](const std::string& name) {
    TransactionBuilder b(db.get(), name);
    b.set_auto_site_chain(false);
    int lv = b.Lock("v"), lt = b.Lock("t"), lz = b.Lock("z"),
        lw = b.Lock("w");
    b.Unlock("t");
    b.Unlock("z");
    b.Unlock("w");
    int uv = b.Unlock("v");
    b.Arc(lv, 4).Arc(lt, 5).Arc(lz, 6).Arc(lw, uv);
    return std::move(*b.Build());
  };
  std::vector<Transaction> txns;
  txns.push_back(make("T1"));
  txns.push_back(make("T2"));
  TransactionSystem sys = testutil::MakeSystem(db.get(), std::move(txns));
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(sys);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Figure2System);

// Exploding-but-benign workloads where the exact checkers must visit the
// whole state space: the per-state cost contrast between the interned
// incremental engine (default) and the retained seed implementation
// (kNaiveReference), measured in the same binary. DisjointGrid visits
// 7^k execution states; SharedChain explores (state, conflict-arc-set)
// pairs with real arcs.
void RunStuckStateGrid(benchmark::State& state, SearchEngine engine) {
  auto grid = GenerateDisjointGridSystem(static_cast<int>(state.range(0)),
                                         /*entities_per_txn=*/3);
  if (!grid.ok()) std::abort();
  DeadlockCheckOptions opts;
  opts.engine = engine;
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*grid->system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ExactDeadlockCheck_StuckState_Grid(benchmark::State& state) {
  RunStuckStateGrid(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_ExactDeadlockCheck_StuckState_Grid)
    ->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactDeadlockCheck_StuckState_Grid_Seed(benchmark::State& state) {
  RunStuckStateGrid(state, SearchEngine::kNaiveReference);
}
BENCHMARK(BM_ExactDeadlockCheck_StuckState_Grid_Seed)
    ->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void RunSafetyChain(benchmark::State& state, SearchEngine engine) {
  auto chain = GenerateSharedChainSystem(static_cast<int>(state.range(0)));
  if (!chain.ok()) std::abort();
  SafetyCheckOptions opts;
  opts.engine = engine;
  uint64_t states = 0;
  for (auto _ : state) {
    auto report = CheckSafeAndDeadlockFree(*chain->system, opts);
    if (!report.ok()) {
      state.SkipWithError("budget");
      break;
    }
    states = report->states_visited;
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["ns_per_state"] = benchmark::Counter(
      static_cast<double>(states) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ExactSafeDfCheck_Chain(benchmark::State& state) {
  RunSafetyChain(state, SearchEngine::kIncremental);
}
BENCHMARK(BM_ExactSafeDfCheck_Chain)
    ->DenseRange(2, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactSafeDfCheck_Chain_Seed(benchmark::State& state) {
  RunSafetyChain(state, SearchEngine::kNaiveReference);
}
BENCHMARK(BM_ExactSafeDfCheck_Chain_Seed)
    ->DenseRange(2, 5, 1)
    ->Unit(benchmark::kMicrosecond);

// The polynomial Theorem 4 test on the same growing inputs the exact
// checker chokes on: the headline contrast of the paper.
void BM_PolynomialSafeDfOnSameInputs(benchmark::State& state) {
  OwnedSystem sys = SameOrderPair(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto report = CheckSystemSafeAndDeadlockFree(*sys.system);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PolynomialSafeDfOnSameInputs)->DenseRange(2, 6, 1);

}  // namespace
}  // namespace wydb
