// Experiment E3: the Theorem 3 pair test scales ~n^2 (given transitively
// closed transactions) while the minimal-prefix variant scales ~n^3, and
// both stay exact. Also measures the closure-construction cost the paper
// brackets out ("assuming the transactions are given in transitively
// closed form").
#include <benchmark/benchmark.h>

#include "analysis/pair_analyzer.h"
#include "common/random.h"
#include "gen/txn_gen.h"

namespace wydb {
namespace {

// A pair of random transactions sharing all `m` entities, ~2m steps each.
struct PairInput {
  std::unique_ptr<Database> db;
  std::unique_ptr<Transaction> t1, t2;
};

PairInput MakePair(int entities, uint64_t seed, bool safe_shape) {
  PairInput in;
  in.db = MakeUniformDatabase(4, (entities + 3) / 4);
  Rng rng(seed);
  TxnGenOptions opts;
  for (EntityId e = 0; e < entities; ++e) opts.entities.push_back(e);
  opts.extra_arc_prob = 2.0 / entities;  // Sparse partial order.
  if (safe_shape) {
    opts.dominating_first = true;
    opts.hold_first_to_end = true;
  }
  auto t1 = GenerateTransaction(in.db.get(), "T1", opts, &rng);
  auto t2 = GenerateTransaction(in.db.get(), "T2", opts, &rng);
  in.t1 = std::make_unique<Transaction>(std::move(*t1));
  in.t2 = std::make_unique<Transaction>(std::move(*t2));
  return in;
}

void BM_PairTheorem3(benchmark::State& state) {
  PairInput in = MakePair(static_cast<int>(state.range(0)), 7,
                          /*safe_shape=*/true);
  for (auto _ : state) {
    auto v = CheckPairTheorem3(*in.t1, *in.t2);
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(in.t1->num_steps());
}
BENCHMARK(BM_PairTheorem3)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_PairMinimalPrefix(benchmark::State& state) {
  PairInput in = MakePair(static_cast<int>(state.range(0)), 7,
                          /*safe_shape=*/true);
  for (auto _ : state) {
    auto v = CheckPairMinimalPrefix(*in.t1, *in.t2);
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(in.t1->num_steps());
}
BENCHMARK(BM_PairMinimalPrefix)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

// Unsafe-shaped inputs exit early on condition (1); measures the
// short-circuit path the paper's two-stage structure gives for free.
void BM_PairTheorem3_UnsafeShape(benchmark::State& state) {
  PairInput in = MakePair(static_cast<int>(state.range(0)), 7,
                          /*safe_shape=*/false);
  for (auto _ : state) {
    auto v = CheckPairTheorem3(*in.t1, *in.t2);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PairTheorem3_UnsafeShape)->RangeMultiplier(2)->Range(8, 512);

// Cost of building a transaction (validation + transitive closure): the
// "given in transitively closed form" caveat of Corollaries 2 and 4.
void BM_TransactionClosureConstruction(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  auto db = MakeUniformDatabase(4, (entities + 3) / 4);
  Rng rng(11);
  TxnGenOptions opts;
  for (EntityId e = 0; e < entities; ++e) opts.entities.push_back(e);
  opts.extra_arc_prob = 2.0 / entities;
  for (auto _ : state) {
    Rng local = rng;
    auto t = GenerateTransaction(db.get(), "T", opts, &local);
    benchmark::DoNotOptimize(t);
  }
  state.SetComplexityN(2 * entities);
}
BENCHMARK(BM_TransactionClosureConstruction)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

}  // namespace
}  // namespace wydb
