// Extension ablation ([W2] early unlocking): cost of the optimizer, the
// holding-time reduction it achieves, and the simulated makespan payoff
// of shorter lock windows.
#include <benchmark/benchmark.h>

#include "analysis/early_unlock.h"
#include "gen/system_gen.h"
#include "runtime/simulation.h"

namespace wydb {
namespace {

OwnedSystem CertifiedSystem(int txns, int entities_per_txn, uint64_t seed) {
  SafeSystemOptions opts;
  opts.num_sites = 1;  // Total orders so the optimizer can act.
  opts.entities_per_site = 2 * entities_per_txn;
  opts.num_transactions = txns;
  opts.entities_per_txn = entities_per_txn;
  opts.seed = seed;
  auto sys = GenerateSafeSystem(opts);
  if (!sys.ok()) std::abort();
  return std::move(*sys);
}

void BM_EarlyUnlockOptimizer(benchmark::State& state) {
  OwnedSystem sys = CertifiedSystem(static_cast<int>(state.range(0)), 4, 3);
  int64_t before = 0, after = 0;
  for (auto _ : state) {
    auto opt = OptimizeEarlyUnlock(*sys.system);
    if (!opt.ok()) {
      state.SkipWithError("optimizer failed");
      return;
    }
    before = opt->holding_cost_before;
    after = opt->holding_cost_after;
    benchmark::DoNotOptimize(opt);
  }
  state.counters["cost_before"] = static_cast<double>(before);
  state.counters["cost_after"] = static_cast<double>(after);
}
BENCHMARK(BM_EarlyUnlockOptimizer)->DenseRange(2, 6, 1);

// Simulated makespan with and without the optimization.
void BM_SimulateUnoptimized(benchmark::State& state) {
  OwnedSystem sys = CertifiedSystem(4, 4, 9);
  uint64_t seed = 1;
  double makespan = 0;
  int runs = 0;
  for (auto _ : state) {
    SimOptions opts;
    opts.seed = seed++;
    auto res = RunSimulation(*sys.system, opts);
    makespan += static_cast<double>(res->makespan);
    ++runs;
  }
  state.counters["avg_makespan"] = runs ? makespan / runs : 0;
}
BENCHMARK(BM_SimulateUnoptimized);

void BM_SimulateOptimized(benchmark::State& state) {
  OwnedSystem sys = CertifiedSystem(4, 4, 9);
  auto opt = OptimizeEarlyUnlock(*sys.system);
  if (!opt.ok()) {
    state.SkipWithError("optimizer failed");
    return;
  }
  uint64_t seed = 1;
  double makespan = 0;
  int runs = 0;
  for (auto _ : state) {
    SimOptions opts;
    opts.seed = seed++;
    auto res = RunSimulation(opt->system, opts);
    makespan += static_cast<double>(res->makespan);
    ++runs;
  }
  state.counters["avg_makespan"] = runs ? makespan / runs : 0;
}
BENCHMARK(BM_SimulateOptimized);

}  // namespace
}  // namespace wydb
