// Experiment E4: Theorem 4's system test runs in time polynomial in the
// number of interaction-graph cycles (chord sweep at fixed k), with an
// ~n^2 per-cycle factor (size sweep at fixed cycle structure).
#include <benchmark/benchmark.h>

#include "analysis/multi_analyzer.h"
#include "core/transaction_builder.h"
#include "gen/system_gen.h"

namespace wydb {
namespace {

// Certified systems check EVERY interaction-graph cycle (no early exit):
// the latch discipline makes the interaction graph complete, so the cycle
// count grows combinatorially with the transaction count while the time
// per cycle stays bounded — Theorem 4's "polynomial in the number of
// cycles".
void BM_MultiTest_CycleSweep(benchmark::State& state) {
  SafeSystemOptions gopts;
  gopts.num_transactions = static_cast<int>(state.range(0));
  gopts.num_sites = 2;
  gopts.entities_per_site = 6;
  gopts.entities_per_txn = 3;
  gopts.seed = 3;
  auto sys = GenerateSafeSystem(gopts);
  if (!sys.ok()) {
    state.SkipWithError("generator failed");
    return;
  }
  uint64_t cycles = 0, variants = 0;
  MultiCheckOptions opts;
  opts.max_cycles = 5'000'000;
  for (auto _ : state) {
    auto report = CheckSystemSafeAndDeadlockFree(*sys->system, opts);
    if (!report.ok()) {
      state.SkipWithError("cycle budget");
      return;
    }
    cycles = report->cycles_checked;
    variants = report->variants_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["variants"] = static_cast<double>(variants);
}
BENCHMARK(BM_MultiTest_CycleSweep)->DenseRange(3, 8, 1);

// Fixed number of transactions (3-ring), growing transaction size: the
// O(n^2)-for-fixed-k claim of Corollary 4. Ring transactions are padded
// with private entities to reach the target step count.
void BM_MultiTest_SizeSweep(benchmark::State& state) {
  const int pad = static_cast<int>(state.range(0));
  auto db = std::make_unique<Database>();
  std::vector<EntityId> ring(3);
  for (int i = 0; i < 3; ++i) {
    ring[i] = *db->AddEntityAtSite("e" + std::to_string(i),
                                   "s" + std::to_string(i));
  }
  std::vector<Transaction> txns;
  for (int i = 0; i < 3; ++i) {
    TransactionBuilder b(db.get(), "T" + std::to_string(i));
    std::vector<int> seq;
    seq.push_back(b.LockId(ring[i]));
    seq.push_back(b.LockId(ring[(i + 1) % 3]));
    for (int p = 0; p < pad; ++p) {
      EntityId priv = *db->AddEntityAtSite(
          "p" + std::to_string(i) + "_" + std::to_string(p),
          "sp" + std::to_string(i) + "_" + std::to_string(p));
      seq.push_back(b.LockId(priv));
      seq.push_back(b.UnlockId(priv));
    }
    seq.push_back(b.UnlockId(ring[(i + 1) % 3]));
    seq.push_back(b.UnlockId(ring[i]));
    for (size_t s = 0; s + 1 < seq.size(); ++s) b.Arc(seq[s], seq[s + 1]);
    txns.push_back(std::move(*b.Build()));
  }
  auto sys = TransactionSystem::Create(db.get(), std::move(txns));
  for (auto _ : state) {
    auto report = CheckSystemSafeAndDeadlockFree(*sys);
    benchmark::DoNotOptimize(report);
  }
  state.SetComplexityN(4 + 2 * pad);
}
BENCHMARK(BM_MultiTest_SizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

// All-pairs stage alone (the part that runs even on cycle-free systems).
void BM_MultiTest_AcyclicInteraction(benchmark::State& state) {
  SafeSystemOptions opts;
  opts.num_transactions = static_cast<int>(state.range(0));
  opts.entities_per_site = 8;
  opts.num_sites = 4;
  opts.entities_per_txn = 4;
  opts.seed = 9;
  auto sys = GenerateSafeSystem(opts);
  if (!sys.ok()) {
    state.SkipWithError("generator failed");
    return;
  }
  for (auto _ : state) {
    auto report = CheckSystemSafeAndDeadlockFree(*sys->system);
    benchmark::DoNotOptimize(report);
  }
}
// The latch discipline makes the interaction graph complete, so the cycle
// count (and hence Theorem 4's bound) grows quickly with the transaction
// count: K6 already has 197 simple cycles.
BENCHMARK(BM_MultiTest_AcyclicInteraction)->DenseRange(2, 6, 2);

}  // namespace
}  // namespace wydb
