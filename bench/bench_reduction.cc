// Experiment E2 (Theorem 2): the reduction from 3SAT' is linear-size and
// cheap to build, witness prefixes are cheap to produce and check, while
// the DECISION cost (here: DPLL on the formula, standing in for any exact
// deadlock decision) grows superpolynomially — the content of
// coNP-completeness.
#include <benchmark/benchmark.h>

#include "analysis/sat/dpll.h"
#include "analysis/sat/reduction.h"
#include "core/reduction_graph.h"

namespace wydb {
namespace {

CnfFormula Instance(int vars, uint64_t seed) {
  ThreeSatPrimeGenOptions opts;
  opts.num_vars = vars;
  opts.seed = seed;
  auto f = GenerateThreeSatPrime(opts);
  if (!f.ok()) std::abort();
  return std::move(*f);
}

// A satisfiable instance (tries successive seeds; random 3SAT' is
// satisfiable with decent probability, e.g. whenever no clause is
// all-negative).
CnfFormula SatInstance(int vars, uint64_t seed) {
  for (uint64_t s = seed; s < seed + 64; ++s) {
    CnfFormula f = Instance(vars, s);
    auto r = SolveDpll(f);
    if (r.ok() && r->satisfiable) return f;
  }
  std::abort();
}

void BM_ReductionConstruction(benchmark::State& state) {
  CnfFormula f = Instance(static_cast<int>(state.range(0)), 3);
  int steps = 0;
  for (auto _ : state) {
    auto red = SatReduction::FromFormula(f);
    if (!red.ok()) state.SkipWithError("reduction failed");
    steps = red->system().TotalSteps();
    benchmark::DoNotOptimize(red);
  }
  state.counters["txn_steps"] = steps;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReductionConstruction)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

void BM_WitnessPrefixAndCycleCheck(benchmark::State& state) {
  CnfFormula f = SatInstance(static_cast<int>(state.range(0)), 3);
  auto sat = SolveDpll(f);
  if (!sat.ok() || !sat->satisfiable) {
    state.SkipWithError("instance unsat");
    return;
  }
  auto red = SatReduction::FromFormula(f);
  if (!red.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  for (auto _ : state) {
    auto prefix = red->WitnessPrefix(sat->assignment);
    ReductionGraph rg(*prefix);
    bool cyc = rg.HasCycle();
    if (!cyc) state.SkipWithError("witness not cyclic");
    benchmark::DoNotOptimize(cyc);
  }
}
BENCHMARK(BM_WitnessPrefixAndCycleCheck)->RangeMultiplier(2)->Range(4, 128);

void BM_DpllDecision(benchmark::State& state) {
  CnfFormula f = Instance(static_cast<int>(state.range(0)), 3);
  uint64_t decisions = 0;
  for (auto _ : state) {
    auto r = SolveDpll(f);
    if (!r.ok()) state.SkipWithError("budget");
    decisions = r->decisions;
    benchmark::DoNotOptimize(r);
  }
  state.counters["decisions"] = static_cast<double>(decisions);
}
BENCHMARK(BM_DpllDecision)->RangeMultiplier(2)->Range(4, 256);

void BM_CycleDecodeAssignment(benchmark::State& state) {
  CnfFormula f = SatInstance(static_cast<int>(state.range(0)), 3);
  auto sat = SolveDpll(f);
  if (!sat.ok() || !sat->satisfiable) {
    state.SkipWithError("instance unsat");
    return;
  }
  auto red = SatReduction::FromFormula(f);
  auto prefix = red->WitnessPrefix(sat->assignment);
  ReductionGraph rg(*prefix);
  auto cycle = rg.FindGlobalCycle();
  for (auto _ : state) {
    auto decoded = red->DecodeAssignment(cycle);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CycleDecodeAssignment)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace wydb
