// Experiment E5 / F6: the Corollary 3 / Theorem 5 copies test is O(1) in
// the number of copies d (it only inspects the syntax of T), while the
// exact checker blows up with d; plus the k-ring sweep behind the Fig. 6
// phenomenon.
#include <benchmark/benchmark.h>

#include "analysis/copies_analyzer.h"
#include "analysis/deadlock_checker.h"
#include "analysis/multi_analyzer.h"
#include "gen/system_gen.h"
#include "tests/test_util.h"

namespace wydb {
namespace {

Transaction CoveredTransaction(const Database* db) {
  return testutil::MakeSeq(
      db, "T", {"Lx", "Ly", "Uy", "Lz", "Uz", "Ux"});
}

void BM_CopiesTest_Theorem5(benchmark::State& state) {
  auto db = testutil::MakeDb({{"s1", {"x", "y"}}, {"s2", {"z"}}});
  Transaction t = CoveredTransaction(db.get());
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CopiesVerdict v = CheckCopies(t, d);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CopiesTest_Theorem5)->RangeMultiplier(4)->Range(2, 512);

void BM_CopiesExactChecker(benchmark::State& state) {
  auto db = testutil::MakeDb({{"s1", {"x", "y"}}, {"s2", {"z"}}});
  Transaction t = CoveredTransaction(db.get());
  const int d = static_cast<int>(state.range(0));
  auto sys = MakeCopies(t, d);
  if (!sys.ok()) {
    state.SkipWithError("copies failed");
    return;
  }
  DeadlockCheckOptions opts;
  opts.max_states = 20'000'000;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*sys, opts);
    if (!report.ok()) {
      state.SkipWithError("state budget exhausted");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CopiesExactChecker)->DenseRange(2, 5, 1);

// Rings (k transactions, circular wait possible): static Theorem 4 test
// and exact checker side by side.
void BM_RingMultiTest(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  if (!ring.ok()) {
    state.SkipWithError("ring failed");
    return;
  }
  for (auto _ : state) {
    auto report = CheckSystemSafeAndDeadlockFree(*ring->system);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RingMultiTest)->DenseRange(3, 10, 1);

void BM_RingExactChecker(benchmark::State& state) {
  auto ring = GenerateRingSystem(static_cast<int>(state.range(0)));
  if (!ring.ok()) {
    state.SkipWithError("ring failed");
    return;
  }
  DeadlockCheckOptions opts;
  opts.max_states = 20'000'000;
  for (auto _ : state) {
    auto report = CheckDeadlockFreedom(*ring->system, opts);
    if (!report.ok()) {
      state.SkipWithError("state budget exhausted");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_RingExactChecker)->DenseRange(3, 7, 1);

// Syntactic Corollary 3 test as a function of transaction size.
void BM_TwoCopiesSyntacticTest(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  auto db = std::make_unique<Database>();
  TransactionBuilder* b = nullptr;
  TransactionBuilder builder(db.get(), "T");
  b = &builder;
  std::vector<int> seq;
  for (int e = 0; e < entities; ++e) {
    db->AddEntityAtSite("e" + std::to_string(e), "s").ValueOrDie();
  }
  // Latch discipline: e0 first and held to the end.
  seq.push_back(b->LockId(0));
  for (int e = 1; e < entities; ++e) {
    seq.push_back(b->LockId(e));
    seq.push_back(b->UnlockId(e));
  }
  seq.push_back(b->UnlockId(0));
  for (size_t s = 0; s + 1 < seq.size(); ++s) b->Arc(seq[s], seq[s + 1]);
  Transaction t = std::move(*b->Build());
  for (auto _ : state) {
    CopiesVerdict v = CheckTwoCopies(t);
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(t.num_steps());
}
BENCHMARK(BM_TwoCopiesSyntacticTest)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

}  // namespace
}  // namespace wydb
